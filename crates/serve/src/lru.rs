//! Capacity-bounded LRU map backing the query-result cache.
//!
//! A classic slot-arena LRU (the `cache-rs` family of eviction libraries is
//! the reference point): a `HashMap` from key to slot index plus an intrusive
//! doubly-linked recency list threaded through a `Vec` of nodes. Everything
//! is pre-allocated to `capacity` up front, and an eviction recycles its slot
//! in place, so the **steady state — hits, and misses that evict — performs
//! no heap allocation**; that property is what lets the serving engine's
//! warm-cache path stay allocation-free (asserted by the `serve_throughput`
//! bench).

use std::collections::HashMap;
use std::hash::Hash;

/// Niche index marking "no slot".
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: u32,
    next: u32,
}

/// Running hit/miss/eviction counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a live entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries displaced by inserts into a full cache.
    pub evictions: u64,
}

/// A fixed-capacity least-recently-used map.
///
/// `get` promotes the entry to most-recently-used; `insert` into a full
/// cache evicts the least-recently-used entry. Capacity 0 is allowed and
/// turns the cache into a no-op (every `insert` is dropped).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, u32>,
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot.
    tail: u32,
    capacity: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Copy, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries, with every internal
    /// structure pre-sized so steady-state operation never allocates.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity < NIL as usize,
            "capacity must fit the u32 slot index"
        );
        Self {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up `key`, promoting the entry to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.nodes[slot as usize].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the least-recently-used entry if
    /// the cache is full. The new entry becomes most-recently-used.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get(&key).copied() {
            self.nodes[slot as usize].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        let slot = if self.map.len() == self.capacity {
            // Recycle the least-recently-used slot in place.
            let victim = self.tail;
            self.detach(victim);
            let node = &mut self.nodes[victim as usize];
            self.map.remove(&node.key);
            node.key = key;
            node.value = value;
            self.stats.evictions += 1;
            victim
        } else if let Some(slot) = self.free.pop() {
            let node = &mut self.nodes[slot as usize];
            node.key = key;
            node.value = value;
            slot
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            slot
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Remove `key` (explicit invalidation), returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let slot = self.map.remove(key)?;
        self.detach(slot);
        self.free.push(slot);
        Some(std::mem::take(&mut self.nodes[slot as usize].value))
    }

    /// Drop every entry and reset the counters (keeps the allocations).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats = CacheStats::default();
    }

    /// Unlink `slot` from the recency list (no-op if not linked).
    fn detach(&mut self, slot: u32) {
        let (prev, next) = {
            let node = &self.nodes[slot as usize];
            (node.prev, node.next)
        };
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.nodes[n as usize].prev = prev,
        }
        let node = &mut self.nodes[slot as usize];
        node.prev = NIL;
        node.next = NIL;
    }

    /// Link `slot` in as most-recently-used.
    fn attach_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let node = &mut self.nodes[slot as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_hits() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(&1).is_some());
        c.insert(4, 40);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "2 was the LRU after 1's promotion");
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn eviction_order_is_exact_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..64 {
            c.insert(i, i);
            // The live window is always the last 8 keys.
            for j in 0..=i {
                let expect_live = j + 8 > i;
                assert_eq!(c.map.contains_key(&j), expect_live, "key {j} at step {i}");
            }
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 56);
    }

    #[test]
    fn remove_frees_the_slot_for_reuse() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.len(), 1);
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0, "removal made room without evicting");
        assert_eq!(c.remove(&99), None);
    }

    #[test]
    fn zero_capacity_is_a_noop_cache() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
        c.insert(2, 20);
        assert_eq!(c.get(&2), Some(&20));
    }
}
