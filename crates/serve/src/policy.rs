//! Pluggable eviction policies for the serving cache.
//!
//! # The plug-in contract
//!
//! A cache ([`PolicyCache`](crate::cache::PolicyCache)) owns the *storage* —
//! the key→slot map, the slot arena of keys and values, the free list and
//! the hit/miss/eviction counters. A policy owns only the *ordering*: pure
//! slot-index bookkeeping deciding who dies when the cache is full. The
//! split is the [`EvictionPolicy`] trait:
//!
//! | hook | called when | the policy must |
//! |------|-------------|-----------------|
//! | [`on_insert`](EvictionPolicy::on_insert) | a key was added under `slot` | start tracking `slot` |
//! | [`on_hit`](EvictionPolicy::on_hit) | `slot` was read or its value replaced | update recency/frequency books |
//! | [`on_remove`](EvictionPolicy::on_remove) | `slot` was explicitly removed | forget `slot` |
//! | [`victim`](EvictionPolicy::victim) | the cache is full and needs room | pick a tracked slot, forget it, return it |
//! | [`peek_victim`](EvictionPolicy::peek_victim) | admission wants the prospective victim | name `victim`'s next answer, books untouched |
//!
//! Slots are dense `u32` indices below the capacity the policy was built for
//! ([`PolicyInit::for_capacity`]), so implementations can keep all their
//! books in pre-sized, slot-indexed vectors — every policy here is
//! allocation-free in the steady state (the LFU/LFUDA frequency buckets ride
//! a `BTreeMap` whose node churn is bounded by the live-slot count; see the
//! empty-bucket invariant below). To plug in a new policy: implement the
//! trait + [`PolicyInit`], add a [`PolicyKind`] variant, and the simulator
//! (`cache_sim` bench), the sharded cache and the server pick it up from the
//! enum.
//!
//! # The catalog
//!
//! * [`LruPolicy`] — classic recency list. The refactor of the original
//!   serving cache: one intrusive doubly-linked list, hit promotes to head,
//!   victim is the tail. Eviction decisions are **bit-compatible** with the
//!   pre-trait `LruCache` (same list ops in the same order).
//! * [`SlruPolicy`] — segmented LRU: new keys enter a *probationary*
//!   segment; a hit promotes to a *protected* segment (capped at 4/5 of
//!   capacity, its overflow demoted back to probation's head). One-touch
//!   keys can never displace the protected set, which is what makes it scan
//!   resistant — an eval sweep that touches everything once churns only the
//!   probation segment.
//! * [`LfuPolicy`] — least-frequently-used with LRU tie-breaking inside a
//!   frequency bucket. Zipf-shaped entity traffic (the skew NSCaching itself
//!   exploits, PAPER.md §4) concentrates hits on head entities; LFU keeps
//!   them pinned regardless of recency noise.
//! * [`LfudaPolicy`] — LFU with dynamic aging (the squid/cache-rs `LFUDA`):
//!   key priority is `age + frequency`, and the age rises to the victim's
//!   priority on every eviction, so formerly-hot keys decay instead of
//!   squatting forever when popularity shifts.
//!
//! Which to serve with is a measurement, not a guess: the `cache_sim` bench
//! replays synthetic Zipf / scan / shifting-popularity traces through every
//! variant and records the hit-rate table into `BENCH_serve.json` (section
//! `cache_sim`). Headline from this container's recording: LFU wins the
//! stationary Zipf head and the scan trace but collapses ~13 pp once
//! popularity drifts; LRU wins the drift trace but gives up ~4 pp to scan
//! pollution; **SLRU is the best all-rounder** — within ~0.2 pp of every
//! winner it doesn't beat and never catastrophic — which is why
//! [`CacheConfig`](crate::server::CacheConfig) defaults to it while the
//! legacy `KnowledgeServer::new` constructor stays on bit-compatible LRU.
//!
//! # The LFU empty-bucket invariant
//!
//! The cache-rs exemplar this catalog follows shipped a 250× LFU slowdown:
//! empty frequency lists were never removed from the bucket map, so finding
//! the next minimum frequency after an eviction scanned thousands of dead
//! buckets (`O(F)`). Both frequency-family policies here remove a bucket
//! **the moment it empties** (bucket count ≤ live slots, asserted in the
//! regression test) and [`LfuPolicy`] additionally keeps a *min-frequency
//! cursor* maintained in O(1) on the hot paths — an insert resets it to 1, a
//! hit that drains the minimum bucket advances it to `freq + 1` — so the
//! eviction path never searches for its victim at all. Only an explicit
//! `remove` that drains the minimum bucket falls back to the bucket map's
//! ordered first-key lookup (`O(log live-slots)`).
//!
//! # Sharding and invalidation
//!
//! Policies are single-threaded by design; concurrency comes from the layer
//! above ([`ShardedCache`](crate::sharded::ShardedCache)), which hash-splits
//! the key space over N independent `PolicyCache` instances behind per-shard
//! locks. Staleness protection lives *above both*: the server stamps every
//! cached value with the model generation ⊕ table-version sum and verifies
//! the stamp on every lookup, so neither the policy choice nor the shard
//! count can make a stale answer servable — see the staleness proptests in
//! `tests/policy_invariants.rs`, which re-prove the invariant for every
//! policy at 1 and 4 shards.

use std::collections::BTreeMap;

/// Niche slot index marking "none".
const NIL: u32 = u32::MAX;

/// Which eviction policy a cache runs. See the [module docs](self) for the
/// catalog and the simulator-driven selection guidance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used (the bit-compatible original).
    Lru,
    /// Segmented LRU (scan-resistant).
    Slru,
    /// Least-frequently-used, LRU within a frequency.
    Lfu,
    /// LFU with dynamic aging (drift-tolerant).
    Lfuda,
}

impl PolicyKind {
    /// Every available policy, in simulator/table order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Slru,
        PolicyKind::Lfu,
        PolicyKind::Lfuda,
    ];

    /// Stable lowercase name (bench tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Slru => "slru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Lfuda => "lfuda",
        }
    }

    /// Build a boxed instance of this policy sized for `capacity` slots.
    pub fn build(self, capacity: usize) -> Box<dyn EvictionPolicy + Send> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::for_capacity(capacity)),
            PolicyKind::Slru => Box::new(SlruPolicy::for_capacity(capacity)),
            PolicyKind::Lfu => Box::new(LfuPolicy::for_capacity(capacity)),
            PolicyKind::Lfuda => Box::new(LfudaPolicy::for_capacity(capacity)),
        }
    }
}

/// The ordering half of a cache: pure slot-index bookkeeping. See the
/// [module docs](self) for the full contract; the cache guarantees that
/// `on_insert` slots were not already tracked, that `on_hit`/`on_remove`
/// slots are currently tracked, and that `victim` is only called while at
/// least one slot is tracked.
pub trait EvictionPolicy: std::fmt::Debug {
    /// Which catalog entry this is.
    fn kind(&self) -> PolicyKind;

    /// Start tracking a freshly inserted slot.
    fn on_insert(&mut self, slot: u32);

    /// A tracked slot was accessed (lookup hit, or value replaced in place).
    fn on_hit(&mut self, slot: u32);

    /// Stop tracking an explicitly removed slot.
    fn on_remove(&mut self, slot: u32);

    /// Choose the slot to evict, stop tracking it, and return it.
    fn victim(&mut self) -> u32;

    /// The slot an immediately following [`victim`](Self::victim) call would
    /// return, **without** detaching it or touching any books. Same
    /// precondition as `victim` (at least one slot tracked). The admission
    /// filter uses this to run its frequency contest *before* committing to
    /// an eviction — a rejected candidate must leave the victim's policy
    /// state exactly as it was.
    fn peek_victim(&self) -> u32;

    /// Forget every slot (cache clear). Keeps allocations.
    fn clear(&mut self);
}

impl EvictionPolicy for Box<dyn EvictionPolicy + Send> {
    fn kind(&self) -> PolicyKind {
        (**self).kind()
    }
    fn on_insert(&mut self, slot: u32) {
        (**self).on_insert(slot)
    }
    fn on_hit(&mut self, slot: u32) {
        (**self).on_hit(slot)
    }
    fn on_remove(&mut self, slot: u32) {
        (**self).on_remove(slot)
    }
    fn victim(&mut self) -> u32 {
        (**self).victim()
    }
    fn peek_victim(&self) -> u32 {
        (**self).peek_victim()
    }
    fn clear(&mut self) {
        (**self).clear()
    }
}

/// Construction: size a policy's books for a fixed slot capacity.
pub trait PolicyInit: EvictionPolicy + Sized {
    /// A policy instance pre-sized for slots `0..capacity`.
    fn for_capacity(capacity: usize) -> Self;
}

/// Slot-indexed intrusive doubly-linked-list links shared by every policy:
/// one `(prev, next)` pair per slot, threaded through whatever list(s) the
/// policy keeps. Pre-sized to capacity; `ensure` never reallocates after
/// construction.
#[derive(Debug, Default)]
struct Links {
    prev: Vec<u32>,
    next: Vec<u32>,
}

/// Head/tail of one intrusive list through a [`Links`] arena.
#[derive(Debug, Clone, Copy)]
struct ListHead {
    head: u32,
    tail: u32,
    len: usize,
}

impl ListHead {
    const EMPTY: ListHead = ListHead {
        head: NIL,
        tail: NIL,
        len: 0,
    };

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Links {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
        }
    }

    /// Grow the (pre-reserved) link arrays to cover `slot`.
    fn ensure(&mut self, slot: u32) {
        let need = slot as usize + 1;
        if self.prev.len() < need {
            self.prev.resize(need, NIL);
            self.next.resize(need, NIL);
        }
    }

    /// Link `slot` in as the head (most-recent end) of `list`.
    fn attach_front(&mut self, list: &mut ListHead, slot: u32) {
        self.ensure(slot);
        let old_head = list.head;
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = old_head;
        if old_head != NIL {
            self.prev[old_head as usize] = slot;
        }
        list.head = slot;
        if list.tail == NIL {
            list.tail = slot;
        }
        list.len += 1;
    }

    /// Unlink `slot` from `list` (it must be a member).
    fn detach(&mut self, list: &mut ListHead, slot: u32) {
        let prev = self.prev[slot as usize];
        let next = self.next[slot as usize];
        match prev {
            NIL => list.head = next,
            p => self.next[p as usize] = next,
        }
        match next {
            NIL => list.tail = prev,
            n => self.prev[n as usize] = prev,
        }
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = NIL;
        list.len -= 1;
    }

    fn clear(&mut self) {
        self.prev.clear();
        self.next.clear();
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

/// Classic least-recently-used: one recency list, hit promotes to head,
/// victim is the tail. This is the original serving cache's list code moved
/// behind the trait; its eviction decisions are bit-compatible with the
/// pre-trait `LruCache` (proven by the unmodified `lru_invariants` suite).
#[derive(Debug)]
pub struct LruPolicy {
    links: Links,
    list: ListHead,
}

impl PolicyInit for LruPolicy {
    fn for_capacity(capacity: usize) -> Self {
        Self {
            links: Links::with_capacity(capacity),
            list: ListHead::EMPTY,
        }
    }
}

impl EvictionPolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn on_insert(&mut self, slot: u32) {
        self.links.attach_front(&mut self.list, slot);
    }

    fn on_hit(&mut self, slot: u32) {
        self.links.detach(&mut self.list, slot);
        self.links.attach_front(&mut self.list, slot);
    }

    fn on_remove(&mut self, slot: u32) {
        self.links.detach(&mut self.list, slot);
    }

    fn victim(&mut self) -> u32 {
        let victim = self.list.tail;
        debug_assert_ne!(victim, NIL, "victim() on an empty policy");
        self.links.detach(&mut self.list, victim);
        victim
    }

    fn peek_victim(&self) -> u32 {
        self.list.tail
    }

    fn clear(&mut self) {
        self.links.clear();
        self.list = ListHead::EMPTY;
    }
}

// ---------------------------------------------------------------------------
// SLRU
// ---------------------------------------------------------------------------

/// Which SLRU segment a slot currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// Segmented LRU: a probationary list for one-touch keys and a protected
/// list (capped at ⌈4/5⌉ of capacity) for re-referenced ones.
///
/// * insert → probation head;
/// * hit → promote to protected head; protected overflow demotes its tail
///   back to probation's head (most-recent probationary position);
/// * victim → probation tail, falling back to protected tail only when
///   probation is empty.
///
/// Scan resistance follows: a one-pass sweep (an eval run walking every
/// entity once) inserts only into probation and can never displace the
/// protected working set.
#[derive(Debug)]
pub struct SlruPolicy {
    links: Links,
    probation: ListHead,
    protected: ListHead,
    /// Which list each slot is on.
    segment: Vec<Segment>,
    /// Maximum protected population before demotion.
    protected_capacity: usize,
}

impl PolicyInit for SlruPolicy {
    fn for_capacity(capacity: usize) -> Self {
        Self {
            links: Links::with_capacity(capacity),
            probation: ListHead::EMPTY,
            protected: ListHead::EMPTY,
            segment: Vec::with_capacity(capacity),
            protected_capacity: capacity * 4 / 5,
        }
    }
}

impl SlruPolicy {
    fn set_segment(&mut self, slot: u32, segment: Segment) {
        let need = slot as usize + 1;
        if self.segment.len() < need {
            self.segment.resize(need, Segment::Probation);
        }
        self.segment[slot as usize] = segment;
    }
}

impl EvictionPolicy for SlruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Slru
    }

    fn on_insert(&mut self, slot: u32) {
        self.links.attach_front(&mut self.probation, slot);
        self.set_segment(slot, Segment::Probation);
    }

    fn on_hit(&mut self, slot: u32) {
        match self.segment[slot as usize] {
            Segment::Probation => self.links.detach(&mut self.probation, slot),
            Segment::Protected => self.links.detach(&mut self.protected, slot),
        }
        self.links.attach_front(&mut self.protected, slot);
        self.set_segment(slot, Segment::Protected);
        if self.protected.len > self.protected_capacity {
            let demoted = self.protected.tail;
            self.links.detach(&mut self.protected, demoted);
            self.links.attach_front(&mut self.probation, demoted);
            self.set_segment(demoted, Segment::Probation);
        }
    }

    fn on_remove(&mut self, slot: u32) {
        match self.segment[slot as usize] {
            Segment::Probation => self.links.detach(&mut self.probation, slot),
            Segment::Protected => self.links.detach(&mut self.protected, slot),
        }
    }

    fn victim(&mut self) -> u32 {
        if !self.probation.is_empty() {
            let victim = self.probation.tail;
            self.links.detach(&mut self.probation, victim);
            victim
        } else {
            let victim = self.protected.tail;
            debug_assert_ne!(victim, NIL, "victim() on an empty policy");
            self.links.detach(&mut self.protected, victim);
            victim
        }
    }

    fn peek_victim(&self) -> u32 {
        if !self.probation.is_empty() {
            self.probation.tail
        } else {
            self.protected.tail
        }
    }

    fn clear(&mut self) {
        self.links.clear();
        self.segment.clear();
        self.probation = ListHead::EMPTY;
        self.protected = ListHead::EMPTY;
    }
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

/// Least-frequently-used with LRU tie-breaking: slots live on per-frequency
/// intrusive lists (`buckets`), the victim is the least-recent slot of the
/// minimum frequency. Guards against the cache-rs empty-frequency-list bug:
/// a bucket is removed **the instant it empties** (so the bucket map holds
/// at most one entry per live slot) and the `min_freq` cursor makes the
/// eviction path O(1) — see the module docs.
#[derive(Debug)]
pub struct LfuPolicy {
    links: Links,
    /// frequency → list of slots at that frequency (most-recent first).
    /// Invariant: no empty lists.
    buckets: BTreeMap<u64, ListHead>,
    /// Access count per slot.
    freq: Vec<u64>,
    /// The minimum key of `buckets` whenever any slot is tracked.
    min_freq: u64,
}

impl PolicyInit for LfuPolicy {
    fn for_capacity(capacity: usize) -> Self {
        Self {
            links: Links::with_capacity(capacity),
            buckets: BTreeMap::new(),
            freq: Vec::with_capacity(capacity),
            min_freq: 0,
        }
    }
}

impl LfuPolicy {
    fn set_freq(&mut self, slot: u32, freq: u64) {
        let need = slot as usize + 1;
        if self.freq.len() < need {
            self.freq.resize(need, 0);
        }
        self.freq[slot as usize] = freq;
    }

    /// Attach `slot` at the head of the `freq` bucket, creating it on demand.
    fn attach(&mut self, freq: u64, slot: u32) {
        let list = self.buckets.entry(freq).or_insert(ListHead::EMPTY);
        self.links.attach_front(list, slot);
    }

    /// Detach `slot` from the `freq` bucket, removing the bucket if it
    /// empties (the cache-rs fix). Returns whether the bucket emptied.
    fn detach(&mut self, freq: u64, slot: u32) -> bool {
        let list = self.buckets.get_mut(&freq).expect("slot's bucket exists");
        self.links.detach(list, slot);
        if list.is_empty() {
            self.buckets.remove(&freq);
            true
        } else {
            false
        }
    }

    /// Number of live frequency buckets (regression hook: must stay ≤ the
    /// number of tracked slots — empty buckets are removed immediately).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The current minimum-frequency cursor (diagnostics/tests).
    pub fn min_frequency(&self) -> u64 {
        self.min_freq
    }
}

impl EvictionPolicy for LfuPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }

    fn on_insert(&mut self, slot: u32) {
        self.set_freq(slot, 1);
        self.attach(1, slot);
        // A fresh slot starts at frequency 1 — the global minimum.
        self.min_freq = 1;
    }

    fn on_hit(&mut self, slot: u32) {
        let freq = self.freq[slot as usize];
        let emptied = self.detach(freq, slot);
        if emptied && self.min_freq == freq {
            // The whole minimum bucket moved up by one: O(1) cursor advance,
            // no search (the slot itself re-attaches at freq + 1 below).
            self.min_freq = freq + 1;
        }
        self.set_freq(slot, freq + 1);
        self.attach(freq + 1, slot);
    }

    fn on_remove(&mut self, slot: u32) {
        let freq = self.freq[slot as usize];
        if self.detach(freq, slot) && self.min_freq == freq {
            // Rare non-eviction path: the minimum bucket is gone and the new
            // minimum is unknown — recover it from the ordered bucket map
            // (O(log live-slots); empty-bucket removal keeps the map small).
            self.min_freq = self.buckets.keys().next().copied().unwrap_or(0);
        }
    }

    fn victim(&mut self) -> u32 {
        let list = self
            .buckets
            .get_mut(&self.min_freq)
            .expect("min_freq cursor points at a live bucket");
        let victim = list.tail;
        self.links.detach(list, victim);
        if list.is_empty() {
            self.buckets.remove(&self.min_freq);
            // No search here either: eviction only happens to make room for
            // an insert, whose on_insert resets the cursor to 1. Keep it
            // exact anyway for the (policy-level) caller that never inserts.
            self.min_freq = self.buckets.keys().next().copied().unwrap_or(0);
        }
        victim
    }

    fn peek_victim(&self) -> u32 {
        self.buckets
            .get(&self.min_freq)
            .expect("min_freq cursor points at a live bucket")
            .tail
    }

    fn clear(&mut self) {
        self.links.clear();
        self.buckets.clear();
        self.freq.clear();
        self.min_freq = 0;
    }
}

// ---------------------------------------------------------------------------
// LFUDA
// ---------------------------------------------------------------------------

/// LFU with dynamic aging: a slot's priority is `age + access count`, where
/// `age` rises to the victim's priority on every eviction. A formerly hot
/// key stops accumulating priority when its hits stop, while every new
/// insert enters at `age + 1` — so after a popularity shift the old head
/// decays in a bounded number of evictions instead of squatting forever
/// (plain LFU's failure mode). Victim: least-recent slot of the minimum
/// priority bucket. Buckets are removed the instant they empty, like
/// [`LfuPolicy`]; the minimum is the ordered bucket map's first key
/// (priorities are not contiguous, so a cursor cannot replace the lookup —
/// still `O(log live-slots)` thanks to the empty-bucket invariant).
#[derive(Debug)]
pub struct LfudaPolicy {
    links: Links,
    /// priority → list of slots at that priority (most-recent first).
    /// Invariant: no empty lists.
    buckets: BTreeMap<u64, ListHead>,
    /// Access count per slot.
    freq: Vec<u64>,
    /// Current priority per slot (`age-at-last-access + freq`).
    priority: Vec<u64>,
    /// The aging factor: priority of the most recently evicted slot.
    age: u64,
}

impl PolicyInit for LfudaPolicy {
    fn for_capacity(capacity: usize) -> Self {
        Self {
            links: Links::with_capacity(capacity),
            buckets: BTreeMap::new(),
            freq: Vec::with_capacity(capacity),
            priority: Vec::with_capacity(capacity),
            age: 0,
        }
    }
}

impl LfudaPolicy {
    fn set_books(&mut self, slot: u32, freq: u64, priority: u64) {
        let need = slot as usize + 1;
        if self.freq.len() < need {
            self.freq.resize(need, 0);
            self.priority.resize(need, 0);
        }
        self.freq[slot as usize] = freq;
        self.priority[slot as usize] = priority;
    }

    fn attach(&mut self, priority: u64, slot: u32) {
        let list = self.buckets.entry(priority).or_insert(ListHead::EMPTY);
        self.links.attach_front(list, slot);
    }

    fn detach(&mut self, priority: u64, slot: u32) {
        let list = self
            .buckets
            .get_mut(&priority)
            .expect("slot's bucket exists");
        self.links.detach(list, slot);
        if list.is_empty() {
            self.buckets.remove(&priority);
        }
    }

    /// The current aging factor (diagnostics/tests).
    pub fn age(&self) -> u64 {
        self.age
    }

    /// Number of live priority buckets (empty-bucket invariant hook).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl EvictionPolicy for LfudaPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfuda
    }

    fn on_insert(&mut self, slot: u32) {
        let priority = self.age + 1;
        self.set_books(slot, 1, priority);
        self.attach(priority, slot);
    }

    fn on_hit(&mut self, slot: u32) {
        let freq = self.freq[slot as usize] + 1;
        let old = self.priority[slot as usize];
        // Monotone per slot: the age never decreases, so age + freq > old.
        let priority = self.age + freq;
        self.detach(old, slot);
        self.set_books(slot, freq, priority);
        self.attach(priority, slot);
    }

    fn on_remove(&mut self, slot: u32) {
        self.detach(self.priority[slot as usize], slot);
    }

    fn victim(&mut self) -> u32 {
        let (&priority, list) = self
            .buckets
            .iter_mut()
            .next()
            .expect("victim() on an empty policy");
        let victim = list.tail;
        self.links.detach(list, victim);
        if list.is_empty() {
            self.buckets.remove(&priority);
        }
        // Dynamic aging: the floor rises to what it took to get evicted.
        self.age = priority;
        victim
    }

    fn peek_victim(&self) -> u32 {
        self.buckets
            .iter()
            .next()
            .expect("peek_victim() on an empty policy")
            .1
            .tail
    }

    fn clear(&mut self) {
        self.links.clear();
        self.buckets.clear();
        self.freq.clear();
        self.priority.clear();
        self.age = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a policy like a capacity-3 cache would and collect evictions.
    fn run<P: EvictionPolicy>(policy: &mut P, ops: &[(&str, u32)], capacity: usize) -> Vec<u32> {
        let mut live: Vec<u32> = Vec::new();
        let mut evicted = Vec::new();
        for &(op, slot) in ops {
            match op {
                "ins" => {
                    if live.len() == capacity {
                        let v = policy.victim();
                        live.retain(|&s| s != v);
                        evicted.push(v);
                    }
                    policy.on_insert(slot);
                    live.push(slot);
                }
                "hit" => policy.on_hit(slot),
                "rm" => {
                    policy.on_remove(slot);
                    live.retain(|&s| s != slot);
                }
                _ => unreachable!(),
            }
        }
        evicted
    }

    #[test]
    fn lru_evicts_the_least_recent() {
        let mut p = LruPolicy::for_capacity(3);
        let evicted = run(
            &mut p,
            &[
                ("ins", 0),
                ("ins", 1),
                ("ins", 2),
                ("hit", 0),
                ("ins", 3), // 1 is now the least recent
            ],
            3,
        );
        assert_eq!(evicted, vec![1]);
    }

    #[test]
    fn slru_protects_re_referenced_slots_from_a_scan() {
        let mut p = SlruPolicy::for_capacity(5); // protected capacity 4
                                                 // 0 and 1 are re-referenced (protected); 2, 3, 4 are one-touch.
        let evicted = run(
            &mut p,
            &[
                ("ins", 0),
                ("ins", 1),
                ("hit", 0),
                ("hit", 1),
                ("ins", 2),
                ("ins", 3),
                ("ins", 4),
                // The scan: new one-touch slots displace only probation.
                ("ins", 5),
                ("ins", 6),
                ("ins", 7),
            ],
            5,
        );
        assert_eq!(evicted, vec![2, 3, 4], "the protected set survived");
    }

    #[test]
    fn slru_falls_back_to_protected_when_probation_is_empty() {
        let mut p = SlruPolicy::for_capacity(3); // protected capacity 2
        p.on_insert(0);
        p.on_insert(1);
        p.on_hit(0);
        p.on_hit(1); // both protected, probation empty
        assert_eq!(p.victim(), 0, "protected LRU is the fallback victim");
    }

    #[test]
    fn lfu_evicts_the_least_frequent_with_lru_ties() {
        let mut p = LfuPolicy::for_capacity(3);
        let evicted = run(
            &mut p,
            &[
                ("ins", 0),
                ("hit", 0),
                ("hit", 0),
                ("ins", 1),
                ("ins", 2),
                ("hit", 2),
                ("ins", 3), // 1 (freq 1) is the least frequent
                ("ins", 1), // slot 3 and 1 at freq 1; 3 is older → evicted
            ],
            3,
        );
        assert_eq!(evicted, vec![1, 3]);
    }

    #[test]
    fn lfu_min_freq_cursor_tracks_hits_and_removes() {
        let mut p = LfuPolicy::for_capacity(4);
        p.on_insert(0);
        p.on_insert(1);
        assert_eq!(p.min_frequency(), 1);
        p.on_hit(0); // 0 → freq 2; bucket 1 still holds slot 1
        assert_eq!(p.min_frequency(), 1, "slot 1 still at freq 1");
        p.on_hit(1); // bucket 1 drained → O(1) cursor advance
        assert_eq!(p.min_frequency(), 2, "bucket 1 drained by the hit");
        p.on_hit(1); // 1 → freq 3; bucket 2 still holds slot 0
        p.on_remove(0); // bucket 2 drained by a remove → ordered-map recovery
        assert_eq!(p.min_frequency(), 3, "remove recovered the true minimum");
        assert_eq!(p.victim(), 1);
        assert_eq!(p.bucket_count(), 0);
    }

    #[test]
    fn lfu_never_accumulates_empty_buckets() {
        // The cache-rs regression: drive one slot through thousands of
        // frequency transitions while churning inserts — the bucket map must
        // stay bounded by the live-slot count, never by the hit count.
        let mut p = LfuPolicy::for_capacity(4);
        p.on_insert(0);
        for _ in 0..50_000 {
            p.on_hit(0);
        }
        assert_eq!(p.bucket_count(), 1, "49_999 drained buckets were removed");
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        for _ in 0..1_000 {
            p.on_hit(1);
            p.on_hit(2);
        }
        assert!(
            p.bucket_count() <= 4,
            "bucket count ({}) must stay ≤ live slots",
            p.bucket_count()
        );
        // Eviction finds the min-frequency victim through the cursor, and
        // the books stay tight afterwards.
        assert_eq!(p.victim(), 3, "the one-touch slot dies first");
        assert!(p.bucket_count() <= 3);
    }

    #[test]
    fn lfuda_ages_out_formerly_hot_slots() {
        let mut p = LfudaPolicy::for_capacity(2);
        p.on_insert(0);
        for _ in 0..9 {
            p.on_hit(0); // freq 10, priority 10
        }
        p.on_insert(1); // priority 1
        assert_eq!(p.victim(), 1, "cold slot dies first");
        assert_eq!(p.age(), 1, "age rose to the victim's priority");
        // After the shift, new keys enter at age + 1 and only need to beat
        // the stale head's fixed priority, not out-hit its history.
        p.on_insert(2); // priority 2
        for _ in 0..12 {
            p.on_hit(2); // priority 1 + 13 = 14 > 10
        }
        assert_eq!(p.victim(), 0, "the stale head decayed and died");
        assert_eq!(p.age(), 10);
        assert_eq!(p.bucket_count(), 1);
    }

    #[test]
    fn policy_kind_builds_every_variant() {
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(4);
            assert_eq!(policy.kind(), kind);
            // Slot 1 is strictly colder than slot 0 by both recency and
            // frequency, so every policy in the catalog agrees on the victim.
            policy.on_insert(0);
            policy.on_insert(1);
            policy.on_hit(0);
            assert_eq!(
                policy.victim(),
                1,
                "{}: slot 1 is strictly colder",
                kind.name()
            );
            policy.on_remove(0);
            policy.clear();
        }
    }

    #[test]
    fn peek_victim_predicts_victim_without_touching_the_books() {
        // Churn every policy like a capacity-4 cache and check, at every
        // eviction point, that peek_victim names exactly the slot victim()
        // then returns — and that peeking (even repeatedly) never changes
        // the outcome. This is the contract the admission filter leans on.
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(4);
            // key → slot map over dense slots 0..4, like the real cache.
            let mut slot_of = [NIL; 7];
            let mut free: Vec<u32> = (0..4).rev().collect();
            for step in 0u32..200 {
                let key = (step % 7) as usize;
                if slot_of[key] != NIL {
                    policy.on_hit(slot_of[key]);
                } else {
                    let slot = match free.pop() {
                        Some(slot) => slot,
                        None => {
                            let peeked = policy.peek_victim();
                            assert_eq!(
                                policy.peek_victim(),
                                peeked,
                                "{}: peeking twice diverged at step {step}",
                                kind.name()
                            );
                            let victim = policy.victim();
                            assert_eq!(
                                peeked,
                                victim,
                                "{}: peek_victim lied at step {step}",
                                kind.name()
                            );
                            for s in slot_of.iter_mut() {
                                if *s == victim {
                                    *s = NIL;
                                }
                            }
                            victim
                        }
                    };
                    policy.on_insert(slot);
                    slot_of[key] = slot;
                }
            }
        }
    }
}
