//! Byte-level snapshot framing: magic, version, payload, checksum.
//!
//! Every snapshot file is one frame:
//!
//! ```text
//! offset  size  content
//! 0       8     magic  b"NSCSNP\x01\n"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     payload length L, u64 LE
//! 20      L     payload (sections; see `snapshot`)
//! 20+L    8     FNV-1a 64 checksum of the payload bytes, u64 LE
//! ```
//!
//! All multi-byte integers and floats are little-endian; `f64` slabs are raw
//! IEEE-754 bit patterns, so tables round-trip **bit-for-bit** (including
//! NaNs and signed zeros — the exact-resume guarantee needs the bits, not the
//! values). [`Writer`] builds the payload and [`write_frame`] adds the
//! framing; [`read_frame`] validates magic → version → length → checksum
//! (in that order, with a typed [`SnapshotError`] per failure mode) before
//! any parsing happens, and [`Reader`] then cursors over the verified
//! payload, reporting premature ends as [`SnapshotError::Truncated`].

use crate::error::SnapshotError;
use std::path::Path;

/// Leading magic of every snapshot file. The trailing `\x01\n` pair catches
/// text-mode newline mangling the way the PNG magic does.
pub const MAGIC: [u8; 8] = *b"NSCSNP\x01\n";

/// Current format revision. Readers reject anything newer.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes of framing around the payload (magic + version + length + checksum).
const FRAME_BYTES: usize = 8 + 4 + 8 + 8;

/// FNV-1a 64-bit over `bytes` — small, fast, and plenty for catching the
/// truncation/bit-rot class of corruption (cryptographic integrity is out of
/// scope for a local checkpoint store).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Payload builder: append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the raw payload bytes.
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` LE.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` LE.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw LE bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string (`u32` length + bytes).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f64` slab (`u64` count + raw LE values).
    pub fn f64_slice(&mut self, values: &[f64]) {
        self.u64(values.len() as u64);
        self.buf.reserve(values.len() * 8);
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u64` slab.
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.u64(values.len() as u64);
        self.buf.reserve(values.len() * 8);
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u32` slab.
    pub fn u32_slice(&mut self, values: &[u32]) {
        self.u64(values.len() as u64);
        self.buf.reserve(values.len() * 4);
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed bool slab (one byte each).
    pub fn bool_slice(&mut self, values: &[bool]) {
        self.u64(values.len() as u64);
        self.buf.extend(values.iter().map(|&b| b as u8));
    }

    /// Append raw bytes verbatim (section bodies).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// The sibling temp file a snapshot is staged in before the atomic rename.
fn staging_path(path: &Path) -> std::path::PathBuf {
    path.with_extension("tmp-snapshot")
}

/// Frame `payload` and write it to `path` (magic + version + length +
/// payload + checksum), atomically and durably:
///
/// 1. write the frame to a sibling temp file and `fsync` it, so the bytes
///    are on the platter before the final name can ever point at them;
/// 2. `rename` over `path` (atomic on POSIX — readers see the old snapshot
///    or the new one, never a mixture);
/// 3. `fsync` the parent directory, so the rename itself survives a power
///    cut (a directory entry is data too, and it lives in the directory).
///
/// A writer killed at any point leaves either the previous snapshot intact
/// or a stale temp file next to it; [`read_frame`] sweeps such leftovers.
pub fn write_frame(path: &Path, payload: &[u8]) -> Result<(), SnapshotError> {
    use std::io::Write as _;

    let mut frame = Vec::with_capacity(FRAME_BYTES + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());

    let tmp = staging_path(path);
    crate::crash::crash_point("write_frame: before temp create");
    let mut file = std::fs::File::create(&tmp)?;
    // Two-part write so the mid-write crash point can leave a *torn* temp
    // file on disk — the state read_frame's sweep exists for.
    let half = frame.len() / 2;
    file.write_all(&frame[..half])?;
    crate::crash::crash_point("write_frame: mid temp write");
    file.write_all(&frame[half..])?;
    file.sync_all()?;
    drop(file);
    crate::crash::crash_point("write_frame: temp durable, before rename");
    std::fs::rename(&tmp, path)?;
    crate::crash::crash_point("write_frame: after rename, before dir fsync");
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Directory fsync can legitimately fail on filesystems that do not
        // support opening directories (e.g. some network mounts); the write
        // itself is still atomic there, so don't fail the checkpoint.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Read, validate and unwrap the frame at `path`, returning the verified
/// payload bytes.
///
/// As a side effect this sweeps a stale staging file (`*.tmp-snapshot`) left
/// by a writer that died before its atomic rename: the torn temp is ignored
/// for reading (the final name always holds a complete frame or nothing) and
/// deleted so it cannot accumulate.
pub fn read_frame(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let tmp = staging_path(path);
    if tmp.exists() {
        let _ = std::fs::remove_file(&tmp);
    }
    let bytes = std::fs::read(path)?;
    if bytes.len() < FRAME_BYTES {
        // Too short to even hold the framing; if the start looks like our
        // magic it is a truncated snapshot, otherwise it is not one at all.
        if bytes.len() >= 8 && bytes[..8] == MAGIC {
            return Err(SnapshotError::Truncated {
                context: "frame header",
                needed: FRAME_BYTES,
                available: bytes.len(),
            });
        }
        let mut found = [0u8; 8];
        found[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        return Err(SnapshotError::BadMagic { found });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(SnapshotError::BadMagic { found });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let expected_total = FRAME_BYTES + payload_len;
    if bytes.len() < expected_total {
        return Err(SnapshotError::Truncated {
            context: "payload",
            needed: expected_total,
            available: bytes.len(),
        });
    }
    if bytes.len() > expected_total {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the checksum",
            bytes.len() - expected_total
        )));
    }
    let payload = &bytes[20..20 + payload_len];
    let expected = u64::from_le_bytes(bytes[20 + payload_len..].try_into().expect("8 bytes"));
    let found = fnv1a64(payload);
    if expected != found {
        return Err(SnapshotError::ChecksumMismatch { expected, found });
    }
    Ok(payload.to_vec())
}

/// Cursor over a verified payload. Every read reports running out of bytes
/// as a typed [`SnapshotError::Truncated`] (defence in depth — the checksum
/// already vouches for files written by this crate).
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Skip `n` bytes (section skipping).
    pub fn skip(&mut self, n: usize, context: &'static str) -> Result<(), SnapshotError> {
        self.take(n, context).map(|_| ())
    }

    /// Consume `n` bytes and return a cursor over just them (section bodies).
    pub fn sub_reader(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<Reader<'a>, SnapshotError> {
        Ok(Reader::new(self.take(n, context)?))
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a `u32` LE.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64` LE.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("non-UTF-8 string in {context}")))
    }

    /// Read a length-prefixed `f64` slab.
    pub fn f64_slice(&mut self, context: &'static str) -> Result<Vec<f64>, SnapshotError> {
        let len = self.checked_len(8, context)?;
        let bytes = self.take(len * 8, context)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read a length-prefixed `u64` slab.
    pub fn u64_slice(&mut self, context: &'static str) -> Result<Vec<u64>, SnapshotError> {
        let len = self.checked_len(8, context)?;
        let bytes = self.take(len * 8, context)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read a length-prefixed `u32` slab.
    pub fn u32_slice(&mut self, context: &'static str) -> Result<Vec<u32>, SnapshotError> {
        let len = self.checked_len(4, context)?;
        let bytes = self.take(len * 4, context)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a length-prefixed bool slab.
    pub fn bool_slice(&mut self, context: &'static str) -> Result<Vec<bool>, SnapshotError> {
        let len = self.checked_len(1, context)?;
        let bytes = self.take(len, context)?;
        Ok(bytes.iter().map(|&b| b != 0).collect())
    }

    /// Read a slab length prefix and sanity-bound it against the remaining
    /// bytes, so a corrupt length cannot drive a huge allocation.
    fn checked_len(
        &mut self,
        elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapshotError> {
        let len = self.u64(context)? as usize;
        if len
            .checked_mul(elem_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(SnapshotError::Truncated {
                context,
                needed: len.saturating_mul(elem_bytes),
                available: self.remaining(),
            });
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nscaching-serve-format-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn scalar_and_slab_round_trip_bitwise() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.str("entity_table");
        w.f64_slice(&[1.5, f64::NAN, f64::INFINITY, -3.25]);
        w.u64_slice(&[0, 1, u64::MAX]);
        w.u32_slice(&[9, 8, 7]);
        w.bool_slice(&[true, false, true]);
        let payload = w.into_payload();

        let mut r = Reader::new(&payload);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str("e").unwrap(), "entity_table");
        let f = r.f64_slice("f").unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], 1.5);
        assert!(f[1].is_nan());
        assert_eq!(f[1].to_bits(), f64::NAN.to_bits(), "NaN bits survive");
        assert_eq!(r.u64_slice("g").unwrap(), vec![0, 1, u64::MAX]);
        assert_eq!(r.u32_slice("h").unwrap(), vec![9, 8, 7]);
        assert_eq!(r.bool_slice("i").unwrap(), vec![true, false, true]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn frame_round_trips_through_a_file() {
        let path = tempfile("frame.snap");
        let payload = b"hello snapshot".to_vec();
        write_frame(&path, &payload).unwrap();
        assert_eq!(read_frame(&path).unwrap(), payload);
    }

    #[test]
    fn bad_magic_is_detected() {
        let path = tempfile("badmagic.snap");
        std::fs::write(&path, b"definitely not a snapshot file").unwrap();
        assert!(matches!(
            read_frame(&path),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let path = tempfile("trunc.snap");
        write_frame(&path, b"0123456789").unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [full.len() - 1, full.len() - 9, 21, 10] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_frame(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let path = tempfile("flip.snap");
        write_frame(&path, b"some payload worth protecting").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[25] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_frame(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn future_versions_are_rejected() {
        let path = tempfile("future.snap");
        write_frame(&path, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_frame(&path),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn reader_reports_truncation_with_context() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.u64("epoch counter").unwrap_err();
        match err {
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => {
                assert_eq!(context, "epoch counter");
                assert_eq!(needed, 8);
                assert_eq!(available, 2);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn corrupt_slab_lengths_cannot_drive_allocation() {
        // A u64 length prefix claiming 2^60 elements must error, not reserve.
        let mut w = Writer::new();
        w.u64(1 << 60);
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        assert!(matches!(
            r.f64_slice("slab"),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn torn_temp_file_from_a_killed_writer_is_ignored_and_swept() {
        // Crash simulation: a writer died after staging half a frame but
        // before the atomic rename. The final name still holds the previous
        // good snapshot; loading must succeed from it and sweep the corpse.
        let path = tempfile("torn.snap");
        write_frame(&path, b"good snapshot").unwrap();
        let tmp = staging_path(&path);
        let good = std::fs::read(&path).unwrap();
        std::fs::write(&tmp, &good[..good.len() / 2]).unwrap();

        assert_eq!(read_frame(&path).unwrap(), b"good snapshot");
        assert!(!tmp.exists(), "stale staging file must be swept on load");
    }

    #[test]
    fn torn_temp_without_a_final_snapshot_is_not_promoted() {
        // Crash simulation: the very first checkpoint died mid-stage. There
        // is nothing valid to load — the torn temp must never be read as a
        // snapshot, and it must still be cleaned up.
        let path = tempfile("firstcrash.snap");
        let _ = std::fs::remove_file(&path);
        let tmp = staging_path(&path);
        std::fs::write(&tmp, &MAGIC[..4]).unwrap();

        assert!(matches!(read_frame(&path), Err(SnapshotError::Io(_))));
        assert!(!tmp.exists(), "torn first-checkpoint temp must be swept");
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
