//! The online query engine: a read-mostly model behind an `Arc`, a bounded
//! LRU result cache in front of it, and batched fan-out over a worker pool.
//!
//! # Query model
//!
//! A [`KnowledgeServer`] answers three query shapes against one loaded
//! [`KgeModel`]:
//!
//! * **Top-k link prediction** ([`TopKQuery`]): given `(entity, relation)`
//!   and a direction, the `k` most plausible entities for the open slot —
//!   `(h, r, ?)` for [`CorruptionSide::Tail`], `(?, r, t)` for
//!   [`CorruptionSide::Head`]. Scoring streams the whole entity table through
//!   the batched `score_all_into` fast path (which for TransR/TransD rides
//!   the relation-projection cache), then selects with
//!   `top_k_indices_into` — all into caller-owned [`QueryScratch`], so the
//!   uncached steady state allocates nothing.
//! * **Rank** ([`KnowledgeServer::rank`]): the competition rank of a known
//!   triple among all corruptions of one side, resolved from the contender
//!   set by `rank_contenders_into` (the evaluation protocol's
//!   early-termination path).
//! * **Triplet classification** ([`KnowledgeServer::score`] /
//!   [`KnowledgeServer::classify`]): the scalar score of one triple, compared
//!   against a caller-supplied threshold (thresholds are tuned per relation
//!   by `nscaching_eval`'s classification protocol).
//!
//! # Cache contract
//!
//! Top-k answers are memoised in a capacity-bounded, hash-**sharded**,
//! policy-**pluggable** cache ([`ShardedCache`]) keyed by the full query
//! `(relation, entity, direction, k)`; [`CacheConfig`] picks the eviction
//! policy ([`PolicyKind`]: LRU / SLRU / LFU / LFUDA — see [`crate::policy`]
//! for the simulator-driven selection guidance) and the shard count. Every
//! entry is stamped with the server's *model stamp* — a mix of a load
//! generation counter and the sum of every `EmbeddingTable::version()` —
//! captured **under the same model lock the answer was computed under**.
//! Mutations go through [`KnowledgeServer::update_model`] /
//! [`KnowledgeServer::reload`], which hold the write lock while they bump
//! table versions and refresh the stamp; a later lookup whose entry stamp no
//! longer matches treats the entry as dead, drops it, and recomputes. A
//! stale answer can therefore never be served, **whatever the policy or
//! shard count**: the stamp lives in the entry, not in the cache structure,
//! so neither the eviction order nor the shard split can detach an answer
//! from the tables it was computed from (re-proven for every policy × shard
//! combination in `tests/policy_invariants.rs`).
//!
//! Classification-heavy traffic gets the same treatment through an optional
//! **score cache** ([`CacheConfig::score_capacity`]): scalar triple scores
//! are memoised under the same stamp scheme, *including typed
//! [`QueryError`]s* — negative caching, so a hot malformed triple (a bad id
//! replayed by a buggy client across a batch) is answered from the cache
//! instead of re-validating against the model on every slot.
//!
//! # Threading
//!
//! The server is `Sync` and cheap to clone (`Arc` inside); concurrent
//! callers share the model under a read lock and the caches under per-shard
//! mutexes — with `shards > 1`, queries for different keys no longer
//! serialise on one cache lock.
//! [`KnowledgeServer::top_k_batch`] / [`KnowledgeServer::score_batch`] fan a
//! query set out across an existing [`WorkerPool`] in contiguous chunks, one
//! per worker, each worker reusing its own scratch from the caller's
//! [`BatchScratch`].

use crate::cache::CacheStats;
use crate::candidates::CandidateIndex;
use crate::error::SnapshotError;
use crate::policy::PolicyKind;
use crate::sharded::ShardedCache;
use crate::snapshot::load_model;
use crate::telemetry::ServeMetrics;
use nscaching_kg::{CorruptionSide, EntityId, RelationId, Triple};
use nscaching_math::{rank_contenders_into, split_seed, top_k_indices_into};
use nscaching_models::{KgeModel, ModelKind};
use nscaching_train::WorkerPool;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// One top-k link-prediction query: the `k` best candidates for the open
/// slot of `(entity, relation)` in the given direction.
///
/// `direction` names the side being *predicted*: [`CorruptionSide::Tail`]
/// asks for tails of `(entity, relation, ?)`, [`CorruptionSide::Head`] for
/// heads of `(?, relation, entity)`. The struct is the cache key, so it is
/// small, `Copy` and hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TopKQuery {
    /// The relation of the query pattern.
    pub relation: RelationId,
    /// The known entity (head for tail prediction, tail for head prediction).
    pub entity: EntityId,
    /// Which side to predict.
    pub direction: CorruptionSide,
    /// How many candidates to return.
    pub k: u32,
}

impl TopKQuery {
    /// Tails of `(head, relation, ?)`.
    pub fn tails(head: EntityId, relation: RelationId, k: u32) -> Self {
        Self {
            relation,
            entity: head,
            direction: CorruptionSide::Tail,
            k,
        }
    }

    /// Heads of `(?, relation, tail)`.
    pub fn heads(tail: EntityId, relation: RelationId, k: u32) -> Self {
        Self {
            relation,
            entity: tail,
            direction: CorruptionSide::Head,
            k,
        }
    }

    /// The anchor triple whose `direction` side is scanned over all entities.
    fn anchor(&self) -> Triple {
        match self.direction {
            CorruptionSide::Tail => Triple::new(self.entity, self.relation, 0),
            CorruptionSide::Head => Triple::new(0, self.relation, self.entity),
        }
    }
}

/// One ranked answer entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedEntity {
    /// The candidate entity.
    pub entity: EntityId,
    /// Its model score (larger = more plausible).
    pub score: f64,
}

/// A query referencing ids outside the served model's vocabularies.
///
/// Serving traffic is untrusted: a single malformed id must produce a typed
/// rejection, never a slice-out-of-bounds panic on the scoring path (which,
/// through the batch fan-out, would take the whole caller down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// An entity id at or beyond `num_entities`.
    EntityOutOfRange {
        /// The offending id.
        entity: EntityId,
        /// The served vocabulary size.
        num_entities: usize,
    },
    /// A relation id at or beyond `num_relations`.
    RelationOutOfRange {
        /// The offending id.
        relation: RelationId,
        /// The served vocabulary size.
        num_relations: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EntityOutOfRange {
                entity,
                num_entities,
            } => write!(f, "entity {entity} out of range (|E| = {num_entities})"),
            QueryError::RelationOutOfRange {
                relation,
                num_relations,
            } => write!(
                f,
                "relation {relation} out of range (|R| = {num_relations})"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Validate one `(entity, relation)` pair against a model's vocabularies.
fn validate_ids(
    model: &dyn KgeModel,
    entity: EntityId,
    relation: RelationId,
) -> Result<(), QueryError> {
    if entity as usize >= model.num_entities() {
        return Err(QueryError::EntityOutOfRange {
            entity,
            num_entities: model.num_entities(),
        });
    }
    if relation as usize >= model.num_relations() {
        return Err(QueryError::RelationOutOfRange {
            relation,
            num_relations: model.num_relations(),
        });
    }
    Ok(())
}

/// Validate every id of a triple.
fn validate_triple(model: &dyn KgeModel, triple: &Triple) -> Result<(), QueryError> {
    validate_ids(model, triple.head, triple.relation)?;
    validate_ids(model, triple.tail, triple.relation)
}

/// Per-caller reusable query buffers. All hot paths write into these instead
/// of allocating; after the first few queries establish the high-water marks,
/// a steady-state query performs no heap allocation (asserted in the
/// `serve_throughput` bench).
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// All-entity score buffer (`score_all_into` target).
    scores: Vec<f64>,
    /// Index buffer of the top-k selection.
    order: Vec<usize>,
    /// Contender buffer of the rank scan.
    contenders: Vec<usize>,
}

/// Per-batch worker scratch: one [`QueryScratch`] per pool worker, reused
/// across batches.
#[derive(Debug, Default)]
pub struct BatchScratch {
    scratches: Vec<QueryScratch>,
}

/// A cached top-k answer plus the model stamp it was computed under.
#[derive(Debug, Clone, Default)]
struct CachedAnswer {
    stamp: u64,
    answer: Arc<[RankedEntity]>,
}

/// A cached scalar score — positive (`Ok`) or **negative** (`Err`, a typed
/// rejection) — plus the model stamp it was computed under.
#[derive(Debug, Clone)]
struct CachedScore {
    stamp: u64,
    result: Result<f64, QueryError>,
}

impl Default for CachedScore {
    fn default() -> Self {
        Self {
            stamp: 0,
            result: Ok(0.0),
        }
    }
}

/// Serving-cache configuration: how many answers to hold, under which
/// eviction policy, split over how many shards, and whether to memoise
/// scalar scores too.
///
/// `Default` is the **simulator's pick**: the `cache_sim` bench (section
/// `cache_sim` of `BENCH_serve.json`) replays Zipf / scan / shifting
/// -popularity traces through every [`PolicyKind`], and SLRU posts the
/// highest minimum and mean hit rate across all three shapes — within
/// ~0.2 pp of the per-trace winner on the stationary-Zipf and scan traces
/// and ~1 pp on popularity drift, with none of the catastrophic cases
/// (plain LFU collapses ~13 pp on drift, plain LRU gives up ~4 pp to scan
/// pollution). The legacy [`KnowledgeServer::new`] constructor instead
/// pins `{policy: Lru, shards: 1}` — bit-compatible with the pre-policy
/// serving cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total cached top-k answers across all shards (0 disables caching).
    pub capacity: usize,
    /// Eviction policy every shard runs.
    pub policy: PolicyKind,
    /// Independent policy instances behind per-shard locks (clamped ≥ 1).
    pub shards: usize,
    /// Capacity of the scalar score cache — positive scores *and* typed
    /// negative entries — for classification-heavy traffic (0 disables it).
    pub score_capacity: usize,
    /// Put a TinyLFU admission filter in front of every shard's eviction
    /// policy (see [`crate::admission`]): an insert into a full shard is
    /// dropped unless the new answer's key has been looked up at least as
    /// often (within the sketch's decay window) as the eviction victim's.
    /// Off by default — unfiltered behaviour is preserved bit-for-bit.
    pub admission: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            policy: PolicyKind::Slru,
            shards: 1,
            score_capacity: 0,
            admission: false,
        }
    }
}

impl CacheConfig {
    /// The simulator-default policy at `capacity` answers.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// The pre-policy-trait cache, bit-for-bit: one LRU shard, no score
    /// cache (what [`KnowledgeServer::new`] uses).
    pub fn legacy_lru(capacity: usize) -> Self {
        Self {
            capacity,
            policy: PolicyKind::Lru,
            shards: 1,
            score_capacity: 0,
            admission: false,
        }
    }

    /// Set the eviction policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Set the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enable the scalar score cache at `capacity` entries.
    pub fn score_capacity(mut self, capacity: usize) -> Self {
        self.score_capacity = capacity;
        self
    }

    /// Enable (or disable) the TinyLFU admission filter.
    pub fn admission(mut self, admission: bool) -> Self {
        self.admission = admission;
        self
    }
}

struct ServerInner {
    model: RwLock<Box<dyn KgeModel>>,
    /// Optional per-relation candidate index for the top-k miss path; see
    /// [`CandidateIndex`] for the answer semantics. Written only under the
    /// model write lock (lock order: model → candidates → cache shard).
    candidates: RwLock<Option<Arc<CandidateIndex>>>,
    cache: ShardedCache<TopKQuery, CachedAnswer>,
    /// Scalar score memoisation incl. negative (typed-error) entries;
    /// `None` when `score_capacity` is 0 so the disabled configuration adds
    /// zero overhead to the scoring path.
    scores: Option<ShardedCache<Triple, CachedScore>>,
    /// Current model stamp; see the module docs for the invalidation
    /// contract. Written only under the model write lock.
    stamp: AtomicU64,
    /// Bumped on every load/update so stamps from different loaded models
    /// can never collide even if their version sums do.
    generation: AtomicU64,
    /// Attach-once telemetry handles. Consulted only off the hit path (one
    /// relaxed load on a cache miss); see [`crate::telemetry`] for the
    /// overhead contract.
    metrics: OnceLock<Arc<ServeMetrics>>,
}

/// The serving engine. Clones share one model and one cache (`Arc` inside).
#[derive(Clone)]
pub struct KnowledgeServer {
    inner: Arc<ServerInner>,
}

impl KnowledgeServer {
    /// Serve an already-built model with an LRU result cache of
    /// `cache_capacity` entries (0 disables caching). Bit-compatible with
    /// the pre-policy-trait server: [`CacheConfig::legacy_lru`], i.e. one
    /// LRU shard and no score cache.
    pub fn new(model: Box<dyn KgeModel>, cache_capacity: usize) -> Self {
        Self::with_cache(model, CacheConfig::legacy_lru(cache_capacity))
    }

    /// Serve an already-built model with a fully specified [`CacheConfig`]
    /// — eviction policy, shard count, and optional scalar score cache.
    pub fn with_cache(model: Box<dyn KgeModel>, config: CacheConfig) -> Self {
        let stamp = stamp_of(model.as_ref(), 1);
        let scores = (config.score_capacity > 0).then(|| {
            ShardedCache::with_admission(
                config.score_capacity,
                config.policy,
                config.shards,
                config.admission,
            )
        });
        Self {
            inner: Arc::new(ServerInner {
                model: RwLock::new(model),
                candidates: RwLock::new(None),
                cache: ShardedCache::with_admission(
                    config.capacity,
                    config.policy,
                    config.shards,
                    config.admission,
                ),
                scores,
                stamp: AtomicU64::new(stamp),
                generation: AtomicU64::new(1),
                metrics: OnceLock::new(),
            }),
        }
    }

    /// Attach telemetry handles (typically [`ServeMetrics::register`]ed on
    /// the front door's registry). Attach-once: later calls are no-ops, so
    /// the handles an instrumented path already loaded stay valid forever.
    pub fn attach_metrics(&self, metrics: Arc<ServeMetrics>) {
        let _ = self.inner.metrics.set(metrics);
    }

    /// The attached telemetry handles, if any.
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.inner.metrics.get()
    }

    /// Bridge this engine's cache counters onto the attached registry
    /// (scrape-time; a no-op when no metrics are attached).
    pub fn publish_metrics(&self) {
        if let Some(metrics) = self.inner.metrics.get() {
            metrics.bridge(&self.cache_stats(), self.score_cache_stats().as_ref());
        }
    }

    /// Load a model from a snapshot (or full checkpoint) file and serve it.
    pub fn load(path: &Path, cache_capacity: usize) -> Result<Self, SnapshotError> {
        Ok(Self::new(load_model(path)?.into_model()?, cache_capacity))
    }

    /// Load a model from a snapshot file and serve it with a fully specified
    /// [`CacheConfig`].
    pub fn load_with_cache(path: &Path, config: CacheConfig) -> Result<Self, SnapshotError> {
        Ok(Self::with_cache(load_model(path)?.into_model()?, config))
    }

    /// Swap in a model from a snapshot file. Existing cache entries become
    /// unreachable (their stamps can no longer match) and are recycled lazily
    /// by the LRU as fresh answers displace them.
    pub fn reload(&self, path: &Path) -> Result<(), SnapshotError> {
        let model = load_model(path)?.into_model()?;
        let mut guard = self.inner.model.write().expect("model lock");
        let generation = self.inner.generation.fetch_add(1, Ordering::Relaxed) + 1;
        *guard = model;
        self.inner
            .stamp
            .store(stamp_of(guard.as_ref(), generation), Ordering::Release);
        Ok(())
    }

    /// Mutate the served model in place (e.g. apply an online fine-tuning
    /// step), refreshing the cache stamp so every prior answer is invalidated
    /// by the tables' bumped versions.
    pub fn update_model(&self, update: impl FnOnce(&mut dyn KgeModel)) {
        let mut guard = self.inner.model.write().expect("model lock");
        let generation = self.inner.generation.fetch_add(1, Ordering::Relaxed) + 1;
        update(guard.as_mut());
        self.inner
            .stamp
            .store(stamp_of(guard.as_ref(), generation), Ordering::Release);
    }

    /// Bind a per-relation [`CandidateIndex`]: subsequent top-k misses score
    /// only the query relation's observed candidate set (falling back to the
    /// full-|E| scan whenever the index cannot shrink it — see
    /// [`CandidateIndex::shrinking_candidates`]).
    ///
    /// Binding **changes the answer set** of indexed queries (entities never
    /// observed with the relation disappear from answers), so it bumps the
    /// model stamp exactly like a model mutation: every previously cached
    /// answer is version-invalidated and can never be served alongside
    /// index-computed ones.
    pub fn bind_candidate_index(&self, index: CandidateIndex) {
        self.swap_candidate_index(Some(Arc::new(index)));
    }

    /// Drop the bound candidate index, restoring full-vocabulary answers.
    /// Bumps the model stamp for the same reason binding does.
    pub fn clear_candidate_index(&self) {
        self.swap_candidate_index(None);
    }

    fn swap_candidate_index(&self, index: Option<Arc<CandidateIndex>>) {
        // Same discipline as `update_model`: the swap happens under the
        // model write lock, so no reader can compute an answer while the
        // stamp and the index disagree.
        let guard = self.inner.model.write().expect("model lock");
        let generation = self.inner.generation.fetch_add(1, Ordering::Relaxed) + 1;
        *self.inner.candidates.write().expect("candidate lock") = index;
        self.inner
            .stamp
            .store(stamp_of(guard.as_ref(), generation), Ordering::Release);
    }

    /// The bound candidate index, if any (diagnostics and benches).
    pub fn candidate_index(&self) -> Option<Arc<CandidateIndex>> {
        self.inner
            .candidates
            .read()
            .expect("candidate lock")
            .clone()
    }

    /// The served scoring function.
    pub fn kind(&self) -> ModelKind {
        self.inner.model.read().expect("model lock").kind()
    }

    /// Entity vocabulary size of the served model.
    pub fn num_entities(&self) -> usize {
        self.inner.model.read().expect("model lock").num_entities()
    }

    /// Relation vocabulary size of the served model.
    pub fn num_relations(&self) -> usize {
        self.inner.model.read().expect("model lock").num_relations()
    }

    /// The current model stamp (diagnostics; changes on every reload/update).
    pub fn stamp(&self) -> u64 {
        self.inner.stamp.load(Ordering::Acquire)
    }

    /// Result-cache hit/miss/eviction counters, aggregated across shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Current number of cached answers across shards.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Score-cache counters, aggregated across shards; `None` when the score
    /// cache is disabled (`score_capacity` 0).
    pub fn score_cache_stats(&self) -> Option<CacheStats> {
        self.inner.scores.as_ref().map(ShardedCache::stats)
    }

    /// The eviction policy every cache shard runs.
    pub fn cache_policy(&self) -> PolicyKind {
        self.inner.cache.policy_kind()
    }

    /// Answer a top-k query without touching the cache, writing the ranked
    /// candidates into `out` (cleared first; `min(k, |E|)` entries, best
    /// first, ties broken towards the lower entity id). Rejects out-of-range
    /// ids with a typed [`QueryError`] — serving traffic is untrusted and
    /// must not be able to panic the scoring path.
    ///
    /// This is the allocation-free hot path: all intermediate state lives in
    /// `scratch` and `out`, both reused across calls.
    pub fn top_k_into(
        &self,
        query: &TopKQuery,
        scratch: &mut QueryScratch,
        out: &mut Vec<RankedEntity>,
    ) -> Result<(), QueryError> {
        let model = self.inner.model.read().expect("model lock");
        validate_ids(model.as_ref(), query.entity, query.relation)?;
        self.top_k_with_model(model.as_ref(), query, scratch, out);
        Ok(())
    }

    /// Answer a top-k query through the result cache: a warm hit is an `Arc`
    /// clone (no scoring, no allocation); a miss computes through
    /// [`Self::top_k_into`] and caches the shared answer under the current
    /// model stamp. Out-of-range ids are rejected before the cache is
    /// touched.
    pub fn top_k(
        &self,
        query: &TopKQuery,
        scratch: &mut QueryScratch,
    ) -> Result<Arc<[RankedEntity]>, QueryError> {
        // Hold the model read lock across lookup, compute and insert: the
        // stamp cannot move while we hold it (writers take the write lock),
        // so the entry we insert is provably stamped with the tables it was
        // computed from. Lock order is always model → shard.
        let model = self.inner.model.read().expect("model lock");
        validate_ids(model.as_ref(), query.entity, query.relation)?;
        let stamp = self.inner.stamp.load(Ordering::Acquire);
        if let Some(entry) = self.inner.cache.get(query) {
            if entry.stamp == stamp {
                return Ok(entry.answer);
            }
            // Version-invalidated: drop the corpse so it cannot be
            // promoted over live entries, then recompute.
            self.inner.cache.remove(query);
            if let Some(metrics) = self.inner.metrics.get() {
                metrics.stale_invalidations.inc();
            }
        }
        // Miss path: the model scan dwarfs the clock reads, so this is the
        // one serve path that gets timed per call (the hit path above stays
        // clock-free — see the telemetry module's overhead contract).
        let compute_started = self.inner.metrics.get().map(|_| Instant::now());
        let mut ranked = Vec::with_capacity(query.k as usize);
        self.top_k_with_model(model.as_ref(), query, scratch, &mut ranked);
        if let (Some(metrics), Some(started)) = (self.inner.metrics.get(), compute_started) {
            metrics.topk_compute_us.observe(started.elapsed());
        }
        let answer: Arc<[RankedEntity]> = ranked.into();
        self.inner.cache.insert(
            *query,
            CachedAnswer {
                stamp,
                answer: Arc::clone(&answer),
            },
        );
        Ok(answer)
    }

    /// Answer a top-k query **only if a live cached answer exists** — the
    /// graceful-degradation hook of the network front door: under pressure a
    /// server can keep absorbing the hot head of its traffic (an `Arc` clone,
    /// no scoring work) while shedding cold queries instead of queueing them.
    ///
    /// Returns `Ok(None)` on a cold or version-invalidated key (the stale
    /// entry is dropped, exactly as [`Self::top_k`] would, but nothing is
    /// recomputed). Out-of-range ids are rejected first, like every other
    /// query path.
    pub fn top_k_cached(
        &self,
        query: &TopKQuery,
    ) -> Result<Option<Arc<[RankedEntity]>>, QueryError> {
        let model = self.inner.model.read().expect("model lock");
        validate_ids(model.as_ref(), query.entity, query.relation)?;
        let stamp = self.inner.stamp.load(Ordering::Acquire);
        if let Some(entry) = self.inner.cache.get(query) {
            if entry.stamp == stamp {
                return Ok(Some(entry.answer));
            }
            self.inner.cache.remove(query);
            if let Some(metrics) = self.inner.metrics.get() {
                metrics.stale_invalidations.inc();
            }
        }
        Ok(None)
    }

    fn top_k_with_model(
        &self,
        model: &dyn KgeModel,
        query: &TopKQuery,
        scratch: &mut QueryScratch,
        out: &mut Vec<RankedEntity>,
    ) {
        let anchor = query.anchor();
        // Candidate-index fast path: score only the relation's observed
        // entities through the batched gather kernel. The candidate list is
        // sorted ascending, so the partial-selection kernel's
        // lower-index tie break *is* the full scan's lower-entity-id tie
        // break, and the ranking over the set is bit-identical to scanning
        // it entity by entity (asserted against the restricted-scan oracle
        // in the candidate-index tests).
        if let Some(index) = &*self.inner.candidates.read().expect("candidate lock") {
            if let Some(candidates) =
                index.shrinking_candidates(query.relation, query.direction, model.num_entities())
            {
                model.score_candidates(&anchor, query.direction, candidates, &mut scratch.scores);
                top_k_indices_into(&scratch.scores, query.k as usize, &mut scratch.order);
                out.clear();
                out.extend(scratch.order.iter().map(|&i| RankedEntity {
                    entity: candidates[i],
                    score: scratch.scores[i],
                }));
                return;
            }
        }
        model.score_all_into(&anchor, query.direction, &mut scratch.scores);
        top_k_indices_into(&scratch.scores, query.k as usize, &mut scratch.order);
        out.clear();
        out.extend(scratch.order.iter().map(|&i| RankedEntity {
            entity: i as EntityId,
            score: scratch.scores[i],
        }));
    }

    /// The model score of one triple (larger = more plausible). With a score
    /// cache configured ([`CacheConfig::score_capacity`]), both outcomes are
    /// memoised under the current model stamp — including the **negative**
    /// one: a malformed triple's typed [`QueryError`] is served from cache on
    /// repeat, so classification-heavy traffic that replays bad ids never
    /// re-validates them.
    pub fn score(&self, triple: &Triple) -> Result<f64, QueryError> {
        let model = self.inner.model.read().expect("model lock");
        self.score_with_model(model.as_ref(), triple)
    }

    /// Scoring body shared by [`Self::score`] and [`Self::score_batch`]:
    /// must be called under the model read lock (so the stamp cannot move
    /// between lookup, compute and insert).
    fn score_with_model(&self, model: &dyn KgeModel, triple: &Triple) -> Result<f64, QueryError> {
        let Some(scores) = &self.inner.scores else {
            validate_triple(model, triple)?;
            return Ok(model.score(triple));
        };
        let stamp = self.inner.stamp.load(Ordering::Acquire);
        if let Some(entry) = scores.get(triple) {
            if entry.stamp == stamp {
                return entry.result;
            }
            scores.remove(triple);
            if let Some(metrics) = self.inner.metrics.get() {
                metrics.stale_invalidations.inc();
            }
        }
        let result = validate_triple(model, triple).map(|()| model.score(triple));
        scores.insert(*triple, CachedScore { stamp, result });
        result
    }

    /// Triplet classification against a caller-tuned threshold.
    pub fn classify(&self, triple: &Triple, threshold: f64) -> Result<bool, QueryError> {
        Ok(self.score(triple)? >= threshold)
    }

    /// Competition rank (1-based, half-credit ties) of `triple` among all
    /// corruptions of `side`, via the contender-scan early-termination path.
    pub fn rank(
        &self,
        triple: &Triple,
        side: CorruptionSide,
        scratch: &mut QueryScratch,
    ) -> Result<f64, QueryError> {
        let model = self.inner.model.read().expect("model lock");
        validate_triple(model.as_ref(), triple)?;
        model.score_all_into(triple, side, &mut scratch.scores);
        let true_entity = triple.entity_at(side) as usize;
        Ok(rank_contenders_into(
            &scratch.scores,
            scratch.scores[true_entity],
            true_entity,
            &mut scratch.contenders,
        )
        .rank())
    }

    /// Answer a batch of top-k queries across `pool`, one contiguous chunk
    /// per worker, through the shared LRU cache. `out[i]` receives the answer
    /// to `queries[i]` — per-query, so one malformed query in a batch yields
    /// one `Err` slot and every other answer still lands.
    pub fn top_k_batch(
        &self,
        pool: &mut WorkerPool,
        queries: &[TopKQuery],
        batch: &mut BatchScratch,
        out: &mut Vec<Result<Arc<[RankedEntity]>, QueryError>>,
    ) {
        let workers = pool.workers();
        batch.scratches.resize_with(workers, QueryScratch::default);
        let empty: Arc<[RankedEntity]> = Arc::new([]);
        out.clear();
        out.resize(queries.len(), Ok(empty));
        let chunk = queries.len().div_ceil(workers).max(1);
        let jobs = queries
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .zip(&mut batch.scratches)
            .enumerate()
            .map(|(worker, ((queries, slots), scratch))| {
                let server = self;
                let job = Box::new(move || {
                    for (query, slot) in queries.iter().zip(slots) {
                        *slot = server.top_k(query, scratch);
                    }
                }) as Box<dyn FnOnce() + Send + '_>;
                (worker, job)
            });
        pool.run_round(jobs);
    }

    /// Score a batch of triples across `pool` (the bulk half of triplet
    /// classification). `out[i]` receives the score of `triples[i]`, per
    /// triple, so malformed ids fail their own slot only.
    pub fn score_batch(
        &self,
        pool: &mut WorkerPool,
        triples: &[Triple],
        out: &mut Vec<Result<f64, QueryError>>,
    ) {
        let workers = pool.workers();
        out.clear();
        out.resize(triples.len(), Ok(0.0));
        let chunk = triples.len().div_ceil(workers).max(1);
        let jobs = triples
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate()
            .map(|(worker, (triples, slots))| {
                let server = self;
                let job = Box::new(move || {
                    let model = server.inner.model.read().expect("model lock");
                    for (triple, slot) in triples.iter().zip(slots) {
                        *slot = server.score_with_model(model.as_ref(), triple);
                    }
                }) as Box<dyn FnOnce() + Send + '_>;
                (worker, job)
            });
        pool.run_round(jobs);
    }
}

/// The model stamp: load generation mixed with the sum of all table
/// versions. Any optimizer step or constraint application bumps at least one
/// table version (monotonically), and every reload bumps the generation, so
/// the stamp of a mutated or replaced model never equals a prior stamp.
fn stamp_of(model: &dyn KgeModel, generation: u64) -> u64 {
    let version_sum: u64 = model.tables().iter().map(|t| t.version()).sum();
    split_seed(generation, version_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig};
    use rand::Rng;

    fn server(kind: ModelKind, cache: usize) -> KnowledgeServer {
        let model = build_model(&ModelConfig::new(kind).with_dim(8).with_seed(5), 40, 6);
        KnowledgeServer::new(model, cache)
    }

    fn reference_top_k(server: &KnowledgeServer, query: &TopKQuery) -> Vec<RankedEntity> {
        // Naive oracle: score every candidate through the scalar path.
        let n = server.num_entities() as u32;
        let mut scored: Vec<RankedEntity> = (0..n)
            .map(|e| {
                let anchor = query.anchor();
                RankedEntity {
                    entity: e,
                    score: server.score(&anchor.corrupted(query.direction, e)).unwrap(),
                }
            })
            .collect();
        // Same total order as the production kernel: NaN-tolerant
        // descending score, ties toward the lower entity id.
        scored.sort_unstable_by(|a, b| {
            nscaching_math::cmp_desc(a.score, b.score).then(a.entity.cmp(&b.entity))
        });
        scored.truncate(query.k as usize);
        scored
    }

    #[test]
    fn top_k_matches_the_naive_oracle_for_every_model() {
        for kind in ModelKind::ALL {
            let server = server(kind, 0);
            let mut scratch = QueryScratch::default();
            let mut out = Vec::new();
            for query in [TopKQuery::tails(3, 1, 5), TopKQuery::heads(7, 2, 5)] {
                server.top_k_into(&query, &mut scratch, &mut out).unwrap();
                let oracle = reference_top_k(&server, &query);
                assert_eq!(out.len(), 5, "{kind:?}");
                for (got, want) in out.iter().zip(&oracle) {
                    assert_eq!(got.entity, want.entity, "{kind:?} {query:?}");
                    assert!(
                        (got.score - want.score).abs() <= 1e-12,
                        "{kind:?} {query:?}: {} vs {}",
                        got.score,
                        want.score
                    );
                }
            }
        }
    }

    #[test]
    fn k_larger_than_the_vocabulary_returns_everything() {
        let server = server(ModelKind::TransE, 0);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        server
            .top_k_into(&TopKQuery::tails(0, 0, 1000), &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), server.num_entities());
    }

    #[test]
    fn cached_and_uncached_answers_agree() {
        let server = server(ModelKind::DistMult, 64);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        let query = TopKQuery::tails(2, 3, 7);
        server.top_k_into(&query, &mut scratch, &mut out).unwrap();
        let cold = server.top_k(&query, &mut scratch).unwrap();
        let warm = server.top_k(&query, &mut scratch).unwrap();
        assert_eq!(&*cold, out.as_slice());
        assert!(Arc::ptr_eq(&cold, &warm), "warm hit shares the answer");
        let stats = server.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn model_updates_invalidate_cached_answers() {
        let server = server(ModelKind::TransE, 64);
        let mut scratch = QueryScratch::default();
        let query = TopKQuery::tails(1, 0, 4);
        let before = server.top_k(&query, &mut scratch).unwrap();
        let stamp_before = server.stamp();
        // Nudge one embedding row; the table version bump must retire the
        // cached answer even though the cache never saw the mutation.
        server.update_model(|model| {
            let mut rng = seeded_rng(9);
            for table in model.tables_mut() {
                let row = table.row_mut(0);
                for v in row {
                    *v += rng.gen::<f64>() * 0.5;
                }
            }
        });
        assert_ne!(server.stamp(), stamp_before);
        let after = server.top_k(&query, &mut scratch).unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "stale answer was not served");
        assert_ne!(
            before.iter().map(|r| r.score.to_bits()).collect::<Vec<_>>(),
            after.iter().map(|r| r.score.to_bits()).collect::<Vec<_>>(),
            "recomputed answer reflects the mutated model"
        );
        assert_eq!(
            server.cache_stats().hits,
            1,
            "the stale probe counts as a hit then dies"
        );
    }

    #[test]
    fn rank_is_consistent_with_top_k() {
        let server = server(ModelKind::ComplEx, 0);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        let query = TopKQuery::tails(4, 2, 1);
        server.top_k_into(&query, &mut scratch, &mut out).unwrap();
        let best = out[0].entity;
        let triple = Triple::new(4, 2, best);
        let rank = server
            .rank(&triple, CorruptionSide::Tail, &mut scratch)
            .unwrap();
        assert_eq!(rank, 1.0, "the top-1 entity must rank first");
    }

    #[test]
    fn classification_respects_the_threshold() {
        let server = server(ModelKind::TransE, 0);
        let triple = Triple::new(0, 0, 1);
        let score = server.score(&triple).unwrap();
        assert!(server.classify(&triple, score - 1.0).unwrap());
        assert!(!server.classify(&triple, score + 1.0).unwrap());
    }

    #[test]
    fn batch_fan_out_matches_sequential_answers() {
        let server = server(ModelKind::TransH, 256);
        let mut pool = WorkerPool::new(4);
        let queries: Vec<TopKQuery> = (0..23)
            .map(|i| {
                if i % 2 == 0 {
                    TopKQuery::tails(i % 7, (i % 5) as RelationId, 4)
                } else {
                    TopKQuery::heads(i % 11, (i % 5) as RelationId, 4)
                }
            })
            .collect();
        let mut batch = BatchScratch::default();
        let mut out = Vec::new();
        server.top_k_batch(&mut pool, &queries, &mut batch, &mut out);
        assert_eq!(out.len(), queries.len());
        let mut scratch = QueryScratch::default();
        let mut expected = Vec::new();
        for (query, got) in queries.iter().zip(&out) {
            server
                .top_k_into(query, &mut scratch, &mut expected)
                .unwrap();
            assert_eq!(&**got.as_ref().unwrap(), expected.as_slice(), "{query:?}");
        }
        // Scores fan out too.
        let triples: Vec<Triple> = (0..13)
            .map(|i| Triple::new(i, i % 5, (i + 3) % 11))
            .collect();
        let mut scores = Vec::new();
        server.score_batch(&mut pool, &triples, &mut scores);
        for (triple, score) in triples.iter().zip(&scores) {
            assert_eq!(score.as_ref().unwrap(), &server.score(triple).unwrap());
        }
    }

    #[test]
    fn out_of_range_ids_are_rejected_not_panics() {
        let server = server(ModelKind::TransE, 16);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        let n = server.num_entities() as u32;
        let r = server.num_relations() as u32;
        assert_eq!(
            server.top_k_into(&TopKQuery::tails(n, 0, 3), &mut scratch, &mut out),
            Err(QueryError::EntityOutOfRange {
                entity: n,
                num_entities: n as usize
            })
        );
        assert!(matches!(
            server.top_k(&TopKQuery::heads(0, r, 3), &mut scratch),
            Err(QueryError::RelationOutOfRange { .. })
        ));
        assert!(server.score(&Triple::new(0, 0, n)).is_err());
        assert!(server.classify(&Triple::new(n, 0, 0), 0.0).is_err());
        assert!(server
            .rank(&Triple::new(0, r, 1), CorruptionSide::Tail, &mut scratch)
            .is_err());
        assert_eq!(server.cache_len(), 0, "rejected queries are never cached");

        // In a batch, one bad query fails its own slot only.
        let mut pool = WorkerPool::new(2);
        let queries = vec![
            TopKQuery::tails(0, 0, 3),
            TopKQuery::tails(n, 0, 3),
            TopKQuery::tails(1, 0, 3),
        ];
        let mut batch = BatchScratch::default();
        let mut answers = Vec::new();
        server.top_k_batch(&mut pool, &queries, &mut batch, &mut answers);
        assert!(answers[0].is_ok());
        assert!(answers[1].is_err());
        assert!(answers[2].is_ok());
        let triples = vec![Triple::new(0, 0, 1), Triple::new(0, r, 1)];
        let mut scores = Vec::new();
        server.score_batch(&mut pool, &triples, &mut scores);
        assert!(scores[0].is_ok());
        assert!(scores[1].is_err());
    }

    #[test]
    fn cache_peek_serves_hits_and_never_stale_answers() {
        let server = server(ModelKind::TransE, 16);
        let mut scratch = QueryScratch::default();
        let query = TopKQuery::tails(2, 1, 4);
        assert_eq!(server.top_k_cached(&query), Ok(None), "cold key is a miss");
        let computed = server.top_k(&query, &mut scratch).unwrap();
        let peeked = server.top_k_cached(&query).unwrap().expect("warm hit");
        assert!(Arc::ptr_eq(&computed, &peeked), "peek shares the answer");
        server.update_model(|model| {
            model.tables_mut()[0].row_mut(0)[0] += 1.0;
        });
        assert_eq!(
            server.top_k_cached(&query),
            Ok(None),
            "a version-invalidated entry must not be served by the peek path"
        );
        let n = server.num_entities() as u32;
        assert!(server.top_k_cached(&TopKQuery::tails(n, 0, 1)).is_err());
    }

    /// The restricted-scan oracle: full scalar scoring of exactly the
    /// candidate set, sorted with the production total order.
    fn reference_top_k_over(
        server: &KnowledgeServer,
        query: &TopKQuery,
        candidates: &[EntityId],
    ) -> Vec<RankedEntity> {
        let mut scored: Vec<RankedEntity> = candidates
            .iter()
            .map(|&e| {
                let anchor = query.anchor();
                RankedEntity {
                    entity: e,
                    score: server.score(&anchor.corrupted(query.direction, e)).unwrap(),
                }
            })
            .collect();
        scored.sort_unstable_by(|a, b| {
            nscaching_math::cmp_desc(a.score, b.score).then(a.entity.cmp(&b.entity))
        });
        scored.truncate(query.k as usize);
        scored
    }

    /// A skewed observed-triple set: relation 0 only ever uses a small
    /// entity slice, relation 1 covers everything, relation 2 is unobserved.
    fn skewed_triples(num_entities: u32) -> Vec<Triple> {
        let mut triples = Vec::new();
        for e in 0..6u32 {
            triples.push(Triple::new(e, 0, (e + 1) % 6));
        }
        for e in 0..num_entities {
            triples.push(Triple::new(e, 1, (e + 1) % num_entities));
        }
        triples
    }

    #[test]
    fn candidate_index_answers_match_the_restricted_scan_oracle() {
        for kind in ModelKind::ALL {
            let server = server(kind, 0);
            let n = server.num_entities() as u32;
            let index = CandidateIndex::build(&skewed_triples(n), server.num_relations());
            server.bind_candidate_index(index);
            let bound = server.candidate_index().expect("index bound");
            let mut scratch = QueryScratch::default();
            let mut out = Vec::new();
            for query in [TopKQuery::tails(3, 0, 4), TopKQuery::heads(2, 0, 4)] {
                let candidates = bound.candidates(query.relation, query.direction);
                assert!(
                    !candidates.is_empty() && candidates.len() < n as usize,
                    "precondition: the skewed relation must shrink the scan"
                );
                server.top_k_into(&query, &mut scratch, &mut out).unwrap();
                let oracle = reference_top_k_over(&server, &query, candidates);
                assert_eq!(out.len(), oracle.len(), "{kind:?} {query:?}");
                for (got, want) in out.iter().zip(&oracle) {
                    assert_eq!(got.entity, want.entity, "{kind:?} {query:?}");
                    assert!(
                        (got.score - want.score).abs() <= 1e-12,
                        "{kind:?} {query:?}: {} vs {}",
                        got.score,
                        want.score
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_index_falls_back_to_the_full_scan_when_it_cannot_shrink() {
        let server = server(ModelKind::TransE, 0);
        let n = server.num_entities() as u32;
        let mut scratch = QueryScratch::default();
        let mut unbound = Vec::new();
        let full_coverage = TopKQuery::tails(1, 1, 5);
        let unobserved = TopKQuery::tails(1, 2, 5);
        let mut expected_full = Vec::new();
        let mut expected_unobserved = Vec::new();
        server
            .top_k_into(&full_coverage, &mut scratch, &mut expected_full)
            .unwrap();
        server
            .top_k_into(&unobserved, &mut scratch, &mut expected_unobserved)
            .unwrap();

        server.bind_candidate_index(CandidateIndex::build(
            &skewed_triples(n),
            server.num_relations(),
        ));
        // Relation 1 covers every entity, relation 2 was never observed:
        // both must take the full-scan path and answer bit-identically to
        // the unbound server.
        server
            .top_k_into(&full_coverage, &mut scratch, &mut unbound)
            .unwrap();
        assert_eq!(unbound, expected_full);
        server
            .top_k_into(&unobserved, &mut scratch, &mut unbound)
            .unwrap();
        assert_eq!(unbound, expected_unobserved);
    }

    #[test]
    fn binding_and_clearing_the_index_invalidate_cached_answers() {
        let server = server(ModelKind::DistMult, 64);
        let n = server.num_entities() as u32;
        let mut scratch = QueryScratch::default();
        let query = TopKQuery::tails(3, 0, 4);
        let full = server.top_k(&query, &mut scratch).unwrap();
        let stamp_unbound = server.stamp();

        server.bind_candidate_index(CandidateIndex::build(
            &skewed_triples(n),
            server.num_relations(),
        ));
        assert_ne!(server.stamp(), stamp_unbound, "bind must move the stamp");
        let indexed = server.top_k(&query, &mut scratch).unwrap();
        assert!(
            !Arc::ptr_eq(&full, &indexed),
            "a full-scan answer must not survive the bind"
        );
        let candidates: Vec<EntityId> = server
            .candidate_index()
            .unwrap()
            .candidates(query.relation, query.direction)
            .to_vec();
        assert!(
            indexed.iter().all(|r| candidates.contains(&r.entity)),
            "indexed answers draw only from the candidate set"
        );

        server.clear_candidate_index();
        let restored = server.top_k(&query, &mut scratch).unwrap();
        assert!(
            !Arc::ptr_eq(&indexed, &restored),
            "an indexed answer must not survive the clear"
        );
        assert_eq!(
            &*restored, &*full,
            "clearing restores full-vocabulary answers"
        );
    }

    #[test]
    fn clones_share_the_model_and_cache() {
        let server = server(ModelKind::TransE, 16);
        let clone = server.clone();
        let mut scratch = QueryScratch::default();
        let query = TopKQuery::tails(0, 0, 3);
        let a = server.top_k(&query, &mut scratch).unwrap();
        let b = clone.top_k(&query, &mut scratch).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "clone hits the shared cache");
        assert_eq!(clone.cache_stats().hits, 1);
    }

    fn server_with_cache(kind: ModelKind, config: CacheConfig) -> KnowledgeServer {
        let model = build_model(&ModelConfig::new(kind).with_dim(8).with_seed(5), 40, 6);
        KnowledgeServer::with_cache(model, config)
    }

    #[test]
    fn every_policy_and_shard_count_answers_identically() {
        let mut scratch = QueryScratch::default();
        let mut oracle = Vec::new();
        let baseline = server(ModelKind::DistMult, 0);
        for policy in PolicyKind::ALL {
            for shards in [1, 4] {
                let server = server_with_cache(
                    ModelKind::DistMult,
                    CacheConfig::with_capacity(32).policy(policy).shards(shards),
                );
                assert_eq!(server.cache_policy(), policy);
                for query in [TopKQuery::tails(2, 3, 5), TopKQuery::heads(9, 1, 4)] {
                    baseline
                        .top_k_into(&query, &mut scratch, &mut oracle)
                        .unwrap();
                    let cold = server.top_k(&query, &mut scratch).unwrap();
                    let warm = server.top_k(&query, &mut scratch).unwrap();
                    assert_eq!(&*cold, oracle.as_slice(), "{policy:?}/{shards}");
                    assert!(Arc::ptr_eq(&cold, &warm), "{policy:?}/{shards} warm hit");
                }
            }
        }
    }

    #[test]
    fn score_cache_memoises_positive_and_negative_answers() {
        let server = server_with_cache(
            ModelKind::TransE,
            CacheConfig::with_capacity(16).score_capacity(64),
        );
        let good = Triple::new(1, 2, 3);
        let bad = Triple::new(1, 2, server.num_entities() as u32);
        let first = server.score(&good).unwrap();
        assert_eq!(server.score(&good).unwrap(), first);
        let rejection = server.score(&bad).unwrap_err();
        assert_eq!(
            server.score(&bad).unwrap_err(),
            rejection,
            "the typed rejection is replayed from the negative cache"
        );
        let stats = server.score_cache_stats().expect("score cache enabled");
        assert_eq!(stats.hits, 2, "one warm positive + one warm negative");
        assert_eq!(stats.misses, 2);

        // Disabled configuration exposes no stats and still answers.
        let plain = server_with_cache(ModelKind::TransE, CacheConfig::legacy_lru(16));
        assert!(plain.score_cache_stats().is_none());
        assert_eq!(plain.score(&good).unwrap(), first);
    }

    #[test]
    fn score_cache_entries_die_with_the_model_stamp() {
        let server = server_with_cache(
            ModelKind::DistMult,
            CacheConfig::with_capacity(16).score_capacity(64),
        );
        let triple = Triple::new(4, 1, 7);
        let before = server.score(&triple).unwrap();
        assert_eq!(server.score(&triple).unwrap(), before, "warm hit");
        server.update_model(|model| {
            model.tables_mut()[0].row_mut(4)[0] += 2.0;
        });
        let after = server.score(&triple).unwrap();
        assert_ne!(before, after, "stale score must be recomputed, not served");
        assert_eq!(server.score(&triple).unwrap(), after);
    }
}
