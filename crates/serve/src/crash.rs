//! Deterministic crash injection for the kill-anywhere recovery harness.
//!
//! The checkpoint write path and the [`CheckpointManager`](crate::manager)'s
//! rotation/quarantine steps are instrumented with [`crash_point`] calls —
//! named places where a process death would leave the most interesting
//! on-disk states (a torn temp file, a completed rename with no directory
//! fsync, a half-finished rotation).
//!
//! In normal operation the hook is a no-op behind one relaxed atomic load.
//! The crash harness (`tests/crash_recovery.rs`) re-executes its own binary
//! as a child with `NSC_CRASH_AT=<n>` set; the child then dies **hard** (via
//! [`std::process::abort`] — no destructors, no buffer flushing, no unwinding,
//! the same on-disk effect as `SIGKILL`) at the `n`-th crash point it passes.
//! Sweeping `n` over every reachable index enumerates every instrumented
//! kill schedule deterministically, which is how the harness proves recovery
//! from *each* of them rather than from whichever a timer happened to hit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable selecting the crash schedule: the 0-based index of
/// the crash point the process dies at. Unset (the production state) disables
/// the whole machinery.
pub const CRASH_AT_ENV: &str = "NSC_CRASH_AT";

static COUNTER: AtomicU64 = AtomicU64::new(0);
static TARGET: OnceLock<Option<u64>> = OnceLock::new();

fn target() -> Option<u64> {
    *TARGET.get_or_init(|| {
        std::env::var(CRASH_AT_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Die here if this is the crash point selected by [`CRASH_AT_ENV`].
///
/// No-op (one atomic load) when the variable is unset. When set, every call
/// increments a process-global counter; the call whose pre-increment value
/// equals the selected index prints the label to stderr and aborts without
/// any cleanup.
pub fn crash_point(label: &str) {
    let Some(at) = target() else { return };
    let index = COUNTER.fetch_add(1, Ordering::Relaxed);
    if index == at {
        eprintln!("crash_point: dying at #{index} ({label})");
        std::process::abort();
    }
}

/// Number of crash points passed so far (0 when injection is disabled —
/// the counter only advances when [`CRASH_AT_ENV`] is set).
///
/// The harness runs one uninstrumented-schedule child (`NSC_CRASH_AT` set
/// beyond reach) to count the reachable crash points before sweeping them.
pub fn crash_points_passed() -> u64 {
    COUNTER.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injection_is_a_no_op() {
        // The test binary never sets NSC_CRASH_AT for itself, so the target
        // resolves to None and the counter must not advance.
        crash_point("test");
        crash_point("test");
        assert_eq!(crash_points_passed(), 0);
    }
}
