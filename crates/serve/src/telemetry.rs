//! Serving-layer telemetry: cache counters bridged onto the metrics
//! registry, miss-path compute latency, and checkpoint lifecycle timings.
//!
//! # Overhead contract
//!
//! The serve **hit path** — a warm [`KnowledgeServer::top_k`] returning an
//! `Arc` clone — is deliberately *not* timed per call: two clock reads cost
//! a meaningful fraction of the ~hundreds-of-nanoseconds hit itself and
//! would blow the `NSC_OBS_OVERHEAD_MAX` gate. Instead:
//!
//! * hit/miss/eviction/rejection **counts** come from the cache's own
//!   [`CacheStats`] (which the hot path already maintains) and are bridged
//!   onto registry counters at scrape time by [`ServeMetrics::bridge`];
//! * the compute histogram (`nsc_serve_topk_compute_us`) times only the
//!   **miss path**, where a model scan dwarfs the clock reads;
//! * stale-entry invalidations are counted at the drop site (a cache-miss
//!   shaped path) via [`ServeMetrics::stale_invalidations`];
//! * checkpoint save/recover timings wrap whole filesystem operations.
//!
//! Attach with [`KnowledgeServer::attach_metrics`] /
//! [`CheckpointManager::attach_metrics`]; both are attach-once
//! (`OnceLock`), and an unattached engine pays one relaxed atomic load on
//! the miss path and nothing on the hit path.
//!
//! [`KnowledgeServer::top_k`]: crate::KnowledgeServer::top_k
//! [`KnowledgeServer::attach_metrics`]: crate::KnowledgeServer::attach_metrics
//! [`CheckpointManager::attach_metrics`]: crate::CheckpointManager::attach_metrics
//! [`CacheStats`]: crate::CacheStats

use crate::cache::CacheStats;
use nscaching_obs::{Counter, LatencyHistogram, MetricsRegistry};
use std::sync::Arc;

/// Registered handles for every serve-layer metric. Cheap to clone the
/// `Arc`; see the module docs for which paths record what.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Top-k result-cache counters, bridged from [`CacheStats`] at scrape.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_rejections: Arc<Counter>,
    /// Scalar score-cache counters (stay 0 when the score cache is off).
    score_hits: Arc<Counter>,
    score_misses: Arc<Counter>,
    score_evictions: Arc<Counter>,
    score_rejections: Arc<Counter>,
    /// Version-invalidated entries dropped at lookup (never served stale).
    pub(crate) stale_invalidations: Arc<Counter>,
    /// Miss-path top-k compute time (model scan + selection), microseconds.
    pub(crate) topk_compute_us: Arc<LatencyHistogram>,
    /// Whole [`CheckpointManager::save`](crate::CheckpointManager::save)
    /// calls (write + fsync + rename + rotation), microseconds.
    pub(crate) checkpoint_save_us: Arc<LatencyHistogram>,
    /// Whole [`CheckpointManager::recover`](crate::CheckpointManager::recover)
    /// calls, microseconds.
    pub(crate) checkpoint_recover_us: Arc<LatencyHistogram>,
    /// Checkpoints saved through an instrumented manager.
    pub(crate) checkpoints_saved: Arc<Counter>,
    /// Corrupt checkpoints quarantined during recovery.
    pub(crate) checkpoints_quarantined: Arc<Counter>,
}

impl ServeMetrics {
    /// Register every serve-layer metric on `registry` and return the shared
    /// handle set. Idempotent per registry (re-registering returns the same
    /// underlying metrics).
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        let cache = |name: &str, which: &str| registry.counter_with(name, &[("cache", which)]);
        Arc::new(Self {
            cache_hits: cache("nsc_serve_cache_hits_total", "topk"),
            cache_misses: cache("nsc_serve_cache_misses_total", "topk"),
            cache_evictions: cache("nsc_serve_cache_evictions_total", "topk"),
            cache_rejections: cache("nsc_serve_cache_rejections_total", "topk"),
            score_hits: cache("nsc_serve_cache_hits_total", "score"),
            score_misses: cache("nsc_serve_cache_misses_total", "score"),
            score_evictions: cache("nsc_serve_cache_evictions_total", "score"),
            score_rejections: cache("nsc_serve_cache_rejections_total", "score"),
            stale_invalidations: registry.counter("nsc_serve_stale_invalidations_total"),
            topk_compute_us: registry.histogram("nsc_serve_topk_compute_us"),
            checkpoint_save_us: registry.histogram("nsc_serve_checkpoint_save_us"),
            checkpoint_recover_us: registry.histogram("nsc_serve_checkpoint_recover_us"),
            checkpoints_saved: registry.counter("nsc_serve_checkpoints_saved_total"),
            checkpoints_quarantined: registry.counter("nsc_serve_checkpoints_quarantined_total"),
        })
    }

    /// Bridge the engine's cumulative cache counters onto the registry
    /// (scrape-time only — the hot path never calls this).
    pub fn bridge(&self, topk: &CacheStats, score: Option<&CacheStats>) {
        self.cache_hits.store(topk.hits);
        self.cache_misses.store(topk.misses);
        self.cache_evictions.store(topk.evictions);
        self.cache_rejections.store(topk.rejections);
        if let Some(s) = score {
            self.score_hits.store(s.hits);
            self.score_misses.store(s.misses);
            self.score_evictions.store(s.evictions);
            self.score_rejections.store(s.rejections);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_bridge_lands_on_the_registry() {
        let registry = MetricsRegistry::new();
        let a = ServeMetrics::register(&registry);
        let b = ServeMetrics::register(&registry);
        a.stale_invalidations.inc();
        assert_eq!(b.stale_invalidations.get(), 1, "same underlying counters");

        a.bridge(
            &CacheStats {
                hits: 10,
                misses: 4,
                evictions: 2,
                rejections: 1,
            },
            None,
        );
        assert_eq!(
            registry.counter_value("nsc_serve_cache_hits_total", &[("cache", "topk")]),
            Some(10)
        );
        assert_eq!(
            registry.counter_value("nsc_serve_cache_hits_total", &[("cache", "score")]),
            Some(0),
            "score cache counters exist (and stay 0) even when disabled"
        );
    }
}
