//! Typed errors of the snapshot store.

use std::fmt;
use std::io;

/// Everything that can go wrong reading or writing a snapshot.
///
/// Corruption is always reported as a typed error, never a panic: a truncated
/// download, a flipped bit or a file from the wrong tool must not take a
/// serving process down (asserted by the corruption tests in
/// `tests/snapshot_roundtrip.rs`).
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the snapshot magic — not a snapshot, or
    /// mangled beyond recognition.
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 8],
    },
    /// The file was written by a newer (or unknown) format revision.
    UnsupportedVersion {
        /// The version tag found in the header.
        found: u32,
    },
    /// The file ends before the declared content does.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// How many bytes the reader needed.
        needed: usize,
        /// How many bytes were left.
        available: usize,
    },
    /// The payload bytes do not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
    /// The snapshot is internally consistent but does not fit what the
    /// caller asked for (wrong table shapes, different training
    /// configuration, missing section).
    SchemaMismatch(String),
    /// The payload passed the checksum but violates a structural invariant
    /// (defensive; unreachable for files written by this crate).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic bytes {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated while reading {context}: needed {needed} bytes, {available} left"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: recorded {expected:#018x}, computed {found:#018x}"
            ),
            SnapshotError::SchemaMismatch(what) => write!(f, "snapshot schema mismatch: {what}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SnapshotError::BadMagic { found: [0; 8] };
        assert!(e.to_string().contains("magic"));
        let e = SnapshotError::Truncated {
            context: "table slab",
            needed: 16,
            available: 3,
        };
        assert!(e.to_string().contains("table slab"));
        let e = SnapshotError::ChecksumMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let io = SnapshotError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
