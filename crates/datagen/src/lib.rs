//! Synthetic knowledge-graph benchmark generator.
//!
//! The paper evaluates on WN18, WN18RR, FB15K and FB15K237 — derivatives of
//! WordNet and Freebase that are not redistributable inside this repository.
//! This crate synthesises datasets that reproduce the *statistical shape* that
//! NSCaching's claims depend on:
//!
//! * entity usage follows a Zipf law (a few hub entities, a long tail);
//! * relations come in 1-1 / 1-N / N-1 / N-N cardinality classes, so the
//!   Bernoulli corruption statistics are non-trivial;
//! * triples are emitted from a latent ground-truth factor model, so link
//!   prediction is learnable but not trivially so — and the score
//!   distribution of negatives is highly skewed, which is the paper's key
//!   observation;
//! * the WN18/FB15K analogues contain near-inverse duplicate relations whose
//!   removal yields the harder WN18RR/FB15K237 analogues, mirroring how the
//!   real variants were constructed.
//!
//! All generators are fully deterministic given a seed, and every dataset can
//! be exported to the standard `train.txt`/`valid.txt`/`test.txt` TSV layout
//! via `nscaching_kg::io`, so real benchmark files can replace the synthetic
//! ones without code changes.

pub mod benchmarks;
pub mod classification;
pub mod config;
pub mod generator;
pub mod latent;

pub use benchmarks::{fb15k237_like, fb15k_like, wn18_like, wn18rr_like, BenchmarkFamily};
pub use classification::{generate_classification_sets, ClassificationSet, LabeledTriple};
pub use config::{CardinalityMix, GeneratorConfig};
pub use generator::generate;
pub use latent::LatentSpace;
