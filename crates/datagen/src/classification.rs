//! Labeled positive/negative triple sets for the triplet-classification task
//! (Table V of the paper).
//!
//! The public WN18RR/FB15K237 releases ship `valid_neg.txt`/`test_neg.txt`
//! files with one corrupted triple per positive. We regenerate the same
//! construction for the synthetic benchmarks: each valid/test positive is
//! paired with a corruption (head or tail replaced uniformly) that does not
//! appear anywhere in the dataset, so the labels are unambiguous.

use nscaching_kg::{CorruptionSide, Dataset, FilterIndex, Split, Triple};
use nscaching_math::seeded_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A triple together with its ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledTriple {
    /// The triple.
    pub triple: Triple,
    /// `true` for positives, `false` for generated negatives.
    pub label: bool,
}

/// Labeled valid/test sets for triplet classification.
#[derive(Debug, Clone)]
pub struct ClassificationSet {
    /// Labeled validation triples (used to tune per-relation thresholds).
    pub valid: Vec<LabeledTriple>,
    /// Labeled test triples (used to report accuracy).
    pub test: Vec<LabeledTriple>,
}

impl ClassificationSet {
    /// Fraction of positive labels in the test set (0.5 by construction).
    pub fn test_positive_fraction(&self) -> f64 {
        if self.test.is_empty() {
            return 0.0;
        }
        self.test.iter().filter(|t| t.label).count() as f64 / self.test.len() as f64
    }
}

/// Generate one negative per positive for the valid and test splits.
pub fn generate_classification_sets(dataset: &Dataset, seed: u64) -> ClassificationSet {
    let filter = dataset.filter_index();
    let mut rng = seeded_rng(seed);
    let valid = label_split(dataset, Split::Valid, &filter, &mut rng);
    let test = label_split(dataset, Split::Test, &filter, &mut rng);
    ClassificationSet { valid, test }
}

fn label_split<R: Rng + ?Sized>(
    dataset: &Dataset,
    split: Split,
    filter: &FilterIndex,
    rng: &mut R,
) -> Vec<LabeledTriple> {
    let num_entities = dataset.num_entities() as u32;
    let mut out = Vec::with_capacity(dataset.split(split).len() * 2);
    for &positive in dataset.split(split) {
        out.push(LabeledTriple {
            triple: positive,
            label: true,
        });
        // Rejection-sample a corruption that is not a known triple.
        let mut negative = None;
        for _ in 0..200 {
            let side = if rng.gen::<bool>() {
                CorruptionSide::Head
            } else {
                CorruptionSide::Tail
            };
            let candidate = rng.gen_range(0..num_entities);
            if candidate == positive.entity_at(side) {
                continue;
            }
            let corrupted = positive.corrupted(side, candidate);
            if !filter.contains(&corrupted) {
                negative = Some(corrupted);
                break;
            }
        }
        if let Some(neg) = negative {
            out.push(LabeledTriple {
                triple: neg,
                label: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    fn dataset() -> Dataset {
        let mut c = GeneratorConfig::small("clf");
        c.num_entities = 150;
        c.num_train = 1_200;
        c.num_valid = 120;
        c.num_test = 120;
        generate(&c).unwrap()
    }

    #[test]
    fn every_positive_gets_a_negative() {
        let ds = dataset();
        let sets = generate_classification_sets(&ds, 3);
        assert_eq!(sets.valid.len(), ds.valid.len() * 2);
        assert_eq!(sets.test.len(), ds.test.len() * 2);
        assert!((sets.test_positive_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn negatives_are_never_known_triples() {
        let ds = dataset();
        let filter = ds.filter_index();
        let sets = generate_classification_sets(&ds, 4);
        for lt in sets.valid.iter().chain(&sets.test) {
            if !lt.label {
                assert!(
                    !filter.contains(&lt.triple),
                    "false negative {:?}",
                    lt.triple
                );
            }
        }
    }

    #[test]
    fn positives_are_exactly_the_split_triples() {
        let ds = dataset();
        let sets = generate_classification_sets(&ds, 5);
        let positives: Vec<Triple> = sets
            .test
            .iter()
            .filter(|t| t.label)
            .map(|t| t.triple)
            .collect();
        assert_eq!(positives, ds.test);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let ds = dataset();
        let a = generate_classification_sets(&ds, 11);
        let b = generate_classification_sets(&ds, 11);
        assert_eq!(a.test, b.test);
        let c = generate_classification_sets(&ds, 12);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn empty_split_yields_empty_labels() {
        let mut ds = dataset();
        ds.test.clear();
        let sets = generate_classification_sets(&ds, 1);
        assert!(sets.test.is_empty());
        assert_eq!(sets.test_positive_fraction(), 0.0);
    }
}
