//! The synthetic dataset generator.

use crate::config::GeneratorConfig;
use crate::latent::LatentSpace;
use nscaching_kg::{Dataset, KgError, Triple, Vocab};
use nscaching_math::{sample_distinct_uniform, seeded_rng, AliasTable, SeedStream};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Per-cardinality-class generation knobs.
///
/// `head_pool` / `tail_pool` bound how many distinct entities may appear on
/// each side of a relation; `temperature` controls how concentrated the
/// latent tail choice is. Together they reproduce the 1-1/1-N/N-1/N-N
/// behaviour of real graphs.
struct ClassProfile {
    head_pool: usize,
    tail_pool: usize,
    temperature: f64,
}

fn class_profile(class: usize, num_entities: usize) -> ClassProfile {
    let n = num_entities as f64;
    match class {
        // 1-1: small pools on both sides, sharp choice
        0 => ClassProfile {
            head_pool: (n * 0.20).ceil() as usize,
            tail_pool: (n * 0.20).ceil() as usize,
            temperature: 0.05,
        },
        // 1-N: few heads, many tails, diffuse choice
        1 => ClassProfile {
            head_pool: (n * 0.03).ceil() as usize,
            tail_pool: (n * 0.50).ceil() as usize,
            temperature: 0.8,
        },
        // N-1: many heads, few tails, sharp choice
        2 => ClassProfile {
            head_pool: (n * 0.50).ceil() as usize,
            tail_pool: (n * 0.03).ceil() as usize,
            temperature: 0.15,
        },
        // N-N: large pools, diffuse choice
        _ => ClassProfile {
            head_pool: (n * 0.40).ceil() as usize,
            tail_pool: (n * 0.40).ceil() as usize,
            temperature: 0.6,
        },
    }
}

/// Zipf weights `1 / rank^s` over `n` ranks.
fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    (1..=n)
        .map(|rank| 1.0 / (rank as f64).powf(exponent))
        .collect()
}

/// Generate a dataset from a configuration.
///
/// The generator is deterministic given `config.seed`. Returned datasets are
/// always deduplicated (a triple appears in exactly one split, once).
pub fn generate(config: &GeneratorConfig) -> Result<Dataset, KgError> {
    config.validate().map_err(KgError::Invalid)?;
    let mut seeds = SeedStream::new(config.seed);
    let mut rng = seeds.next_rng();

    let num_entities = config.num_entities;
    let num_base = config.num_relations;
    let num_inverse = config.total_relations() - num_base;

    let latent = LatentSpace::sample(&mut rng, num_entities, num_base, config.latent_dim);
    let classes = config.cardinality.assign(num_base);

    // Zipf-ranked entity popularity: entity id == popularity rank - 1, so low
    // ids are hubs. The alias table makes head draws O(1).
    let popularity = zipf_weights(num_entities, config.zipf_exponent);
    let popularity_table =
        AliasTable::new(&popularity).expect("zipf weights are positive and non-empty");

    // Per-relation head/tail pools, biased towards popular entities by
    // drawing pool members from the popularity distribution.
    let mut head_pools: Vec<Vec<usize>> = Vec::with_capacity(num_base);
    let mut tail_pools: Vec<Vec<usize>> = Vec::with_capacity(num_base);
    let mut temperatures: Vec<f64> = Vec::with_capacity(num_base);
    for &class in &classes {
        let profile = class_profile(class, num_entities);
        head_pools.push(sample_pool(
            &mut rng,
            &popularity_table,
            num_entities,
            profile.head_pool,
        ));
        tail_pools.push(sample_pool(
            &mut rng,
            &popularity_table,
            num_entities,
            profile.tail_pool,
        ));
        temperatures.push(profile.temperature);
    }

    // Which base relations get an inverse-duplicate partner, and the partner ids.
    let inverse_partner: Vec<Option<u32>> = (0..num_base)
        .map(|r| {
            if r < num_inverse {
                Some((num_base + r) as u32)
            } else {
                None
            }
        })
        .collect();

    // Relation usage is itself skewed (FB15K has a few huge relations).
    let relation_weights = zipf_weights(num_base, 0.6);
    let relation_table = AliasTable::new(&relation_weights).expect("positive weights");

    let total_target = config.num_train + config.num_valid + config.num_test;
    let mut triples: Vec<Triple> = Vec::with_capacity(total_target + total_target / 4);
    let mut seen: HashSet<Triple> = HashSet::with_capacity(triples.capacity());

    let max_attempts = total_target.saturating_mul(40).max(10_000);
    let mut attempts = 0usize;
    // Candidate subset size for the latent tail choice: full pools are too
    // slow for large graphs, 48 candidates preserve the latent structure.
    const TAIL_CANDIDATES: usize = 48;

    while triples.len() < total_target && attempts < max_attempts {
        attempts += 1;
        let relation = relation_table.sample(&mut rng);
        let head_pool = &head_pools[relation];
        let tail_pool = &tail_pools[relation];
        let head = head_pool[rng.gen_range(0..head_pool.len())];

        let candidates: Vec<usize> = if tail_pool.len() <= TAIL_CANDIDATES {
            tail_pool.clone()
        } else {
            sample_distinct_uniform(&mut rng, tail_pool.len(), TAIL_CANDIDATES)
                .into_iter()
                .map(|i| tail_pool[i])
                .collect()
        };
        let tail = latent.choose_tail(
            &mut rng,
            head,
            relation,
            &candidates,
            temperatures[relation],
        );
        if head == tail {
            continue;
        }
        let triple = Triple::new(head as u32, relation as u32, tail as u32);
        if !seen.insert(triple) {
            continue;
        }
        triples.push(triple);

        // Mirror into the inverse-duplicate partner, mimicking how WN18 and
        // FB15K leak test answers through reciprocal relations.
        if let Some(partner) = inverse_partner[relation] {
            if triples.len() < total_target && rng.gen::<f64>() < config.inverse_mirror_probability
            {
                let mirrored = Triple::new(tail as u32, partner, head as u32);
                if seen.insert(mirrored) {
                    triples.push(mirrored);
                }
            }
        }
    }

    if triples.len() < total_target.min(config.num_train) {
        return Err(KgError::Invalid(format!(
            "generator produced only {} of {} requested triples; \
             increase num_entities or reduce the triple count",
            triples.len(),
            total_target
        )));
    }

    // Shuffle and split. If fewer triples than requested were produced, the
    // shortfall is taken from the train split so valid/test keep their size.
    triples.shuffle(&mut rng);
    let num_test = config.num_test.min(triples.len().saturating_sub(1));
    let num_valid = config
        .num_valid
        .min(triples.len().saturating_sub(num_test + 1));
    let test = triples.split_off(triples.len() - num_test);
    let valid = triples.split_off(triples.len() - num_valid);
    let train = triples;

    let entities = Vocab::synthetic("e", num_entities);
    let relations = Vocab::synthetic("r", config.total_relations());
    Dataset::new(config.name.clone(), entities, relations, train, valid, test)
}

fn sample_pool<R: Rng + ?Sized>(
    rng: &mut R,
    popularity: &AliasTable,
    num_entities: usize,
    pool_size: usize,
) -> Vec<usize> {
    let pool_size = pool_size.clamp(2, num_entities);
    // Keep insertion order (not HashSet iteration order) so pool contents are
    // a pure function of the RNG stream and generation stays deterministic.
    let mut seen: HashSet<usize> = HashSet::with_capacity(pool_size);
    let mut pool: Vec<usize> = Vec::with_capacity(pool_size);
    // Draw from the popularity distribution first so pools are hub-biased…
    let mut guard = 0usize;
    while pool.len() < pool_size && guard < pool_size * 20 {
        let candidate = popularity.sample(rng);
        if seen.insert(candidate) {
            pool.push(candidate);
        }
        guard += 1;
    }
    // …then top up uniformly if the skew made draws collide too often.
    while pool.len() < pool_size {
        let candidate = rng.gen_range(0..num_entities);
        if seen.insert(candidate) {
            pool.push(candidate);
        }
    }
    pool
}

/// Convenience wrapper: generate with an overriding seed.
pub fn generate_with_seed(config: &GeneratorConfig, seed: u64) -> Result<Dataset, KgError> {
    let mut c = config.clone();
    c.seed = seed;
    let _ = seeded_rng(seed); // keep the signature honest about determinism
    generate(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_kg::{BernoulliStats, DatasetStats};

    fn quick_config() -> GeneratorConfig {
        let mut c = GeneratorConfig::small("unit");
        c.num_entities = 200;
        c.num_train = 1_500;
        c.num_valid = 100;
        c.num_test = 100;
        c.num_relations = 8;
        c
    }

    #[test]
    fn generated_dataset_matches_requested_shape() {
        let ds = generate(&quick_config()).unwrap();
        assert_eq!(ds.num_entities(), 200);
        assert_eq!(ds.num_relations(), 8);
        assert_eq!(ds.valid.len(), 100);
        assert_eq!(ds.test.len(), 100);
        assert!(ds.train.len() >= 1_000, "train = {}", ds.train.len());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let c = quick_config();
        let a = generate(&c).unwrap();
        let b = generate(&c).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.test, b.test);
        let d = generate(&c.clone().with_seed(99)).unwrap();
        assert_ne!(a.train, d.train);
    }

    #[test]
    fn no_triple_appears_twice_across_splits() {
        let ds = generate(&quick_config()).unwrap();
        let mut seen = HashSet::new();
        for t in ds.all_triples() {
            assert!(seen.insert(*t), "duplicate triple {t}");
        }
    }

    #[test]
    fn no_self_loops_are_generated() {
        let ds = generate(&quick_config()).unwrap();
        assert!(ds.all_triples().all(|t| t.head != t.tail));
    }

    #[test]
    fn cardinality_classes_produce_spread_tph_hpt() {
        let mut c = quick_config();
        c.num_train = 3_000;
        let ds = generate(&c).unwrap();
        let stats = BernoulliStats::from_train(&ds.train, ds.num_relations());
        let tphs: Vec<f64> = stats
            .all()
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| s.tph)
            .collect();
        let max = tphs.iter().cloned().fold(f64::MIN, f64::max);
        let min = tphs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 1.5,
            "expected at least one *-to-many relation, max tph {max}"
        );
        assert!(min < max, "tph should vary across relations");
    }

    #[test]
    fn inverse_duplicates_create_reciprocal_pairs() {
        let mut c = quick_config();
        c.inverse_fraction = 0.5;
        c.num_train = 2_000;
        let ds = generate(&c).unwrap();
        assert_eq!(ds.num_relations(), 12, "8 base + 4 inverse relations");
        // count triples whose reverse (under the partner relation) also exists
        let all: HashSet<Triple> = ds.all_triples().copied().collect();
        let mut mirrored = 0usize;
        for t in &all {
            if t.relation < 4 {
                let partner = t.relation + 8;
                if all.contains(&Triple::new(t.tail, partner, t.head)) {
                    mirrored += 1;
                }
            }
        }
        assert!(
            mirrored > 50,
            "expected many mirrored pairs, got {mirrored}"
        );
    }

    #[test]
    fn zipf_exponent_skews_entity_usage() {
        let mut c = quick_config();
        c.zipf_exponent = 1.1;
        let ds = generate(&c).unwrap();
        let mut counts = vec![0usize; ds.num_entities()];
        for t in ds.all_triples() {
            counts[t.head as usize] += 1;
            counts[t.tail as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = counts[..counts.len() / 10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            top_decile as f64 > 0.2 * total as f64,
            "top 10% of entities should carry a disproportionate share ({top_decile}/{total})"
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = quick_config();
        c.num_entities = 3;
        assert!(generate(&c).is_err());
    }

    #[test]
    fn stats_row_is_well_formed() {
        let ds = generate(&quick_config()).unwrap();
        let row = DatasetStats::of(&ds).tsv_row();
        assert!(row.starts_with("unit\t200\t8\t"));
    }
}
