//! Latent ground-truth factor model.
//!
//! Triples are emitted by a hidden TransE-style generative model: every
//! entity has a latent position on the unit sphere, every relation a latent
//! translation. A tail `t` is plausible for `(h, r, ·)` when
//! `‖e_h + v_r − e_t‖` is small. Training a KG embedding model on such data
//! is learnable (the latent geometry can be recovered) but not trivial
//! (finite samples, Zipf head/tail imbalance, cardinality pools), which is
//! exactly what the paper's experiments require from the real benchmarks.

use nscaching_math::vecops::{l2_distance, normalize_l2};
use nscaching_math::{softmax, uniform_init};
use rand::Rng;

/// The latent factors behind a synthetic dataset.
#[derive(Debug, Clone)]
pub struct LatentSpace {
    dim: usize,
    entity_vectors: Vec<Vec<f64>>,
    relation_vectors: Vec<Vec<f64>>,
}

impl LatentSpace {
    /// Sample a latent space with `num_entities` unit-norm entity positions
    /// and `num_relations` translation vectors.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        num_entities: usize,
        num_relations: usize,
        dim: usize,
    ) -> Self {
        assert!(dim > 0, "latent dimension must be positive");
        let entity_vectors = (0..num_entities)
            .map(|_| {
                let mut v = uniform_init(rng, dim, 1.0);
                normalize_l2(&mut v);
                v
            })
            .collect();
        let relation_vectors = (0..num_relations)
            .map(|_| uniform_init(rng, dim, 0.6))
            .collect();
        Self {
            dim,
            entity_vectors,
            relation_vectors,
        }
    }

    /// Latent dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_vectors.len()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relation_vectors.len()
    }

    /// Latent plausibility of `(h, r, t)`: the negative latent distance
    /// `−‖e_h + v_r − e_t‖`.
    pub fn plausibility(&self, head: usize, relation: usize, tail: usize) -> f64 {
        let target: Vec<f64> = self.entity_vectors[head]
            .iter()
            .zip(&self.relation_vectors[relation])
            .map(|(e, v)| e + v)
            .collect();
        -l2_distance(&target, &self.entity_vectors[tail])
    }

    /// Choose a tail for `(head, relation, ·)` among `candidates` with
    /// probability `softmax(plausibility / temperature)`.
    ///
    /// Low temperatures concentrate the choice on the latent nearest
    /// neighbour (→ 1-ish cardinality); higher temperatures spread it over
    /// many plausible tails (→ N-ish cardinality).
    pub fn choose_tail<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        head: usize,
        relation: usize,
        candidates: &[usize],
        temperature: f64,
    ) -> usize {
        assert!(!candidates.is_empty(), "need at least one candidate tail");
        assert!(temperature > 0.0, "temperature must be positive");
        let scores: Vec<f64> = candidates
            .iter()
            .map(|&c| self.plausibility(head, relation, c) / temperature)
            .collect();
        let probs = softmax(&scores);
        let draw = nscaching_math::sample_one_weighted(rng, &probs);
        candidates[draw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    #[test]
    fn sampled_space_has_requested_shape() {
        let mut rng = seeded_rng(1);
        let s = LatentSpace::sample(&mut rng, 50, 5, 8);
        assert_eq!(s.num_entities(), 50);
        assert_eq!(s.num_relations(), 5);
        assert_eq!(s.dim(), 8);
    }

    #[test]
    fn plausibility_is_highest_for_the_latent_nearest_neighbour() {
        let mut rng = seeded_rng(2);
        let s = LatentSpace::sample(&mut rng, 100, 3, 6);
        // the most plausible tail should beat a random tail on average
        let mut wins = 0;
        for h in 0..50 {
            let best = (0..100)
                .max_by(|&a, &b| {
                    s.plausibility(h, 0, a)
                        .partial_cmp(&s.plausibility(h, 0, b))
                        .unwrap()
                })
                .unwrap();
            if s.plausibility(h, 0, best) > s.plausibility(h, 0, (h + 37) % 100) {
                wins += 1;
            }
        }
        assert!(
            wins >= 48,
            "latent structure should be informative, wins = {wins}"
        );
    }

    #[test]
    fn low_temperature_concentrates_tail_choice() {
        let mut rng = seeded_rng(3);
        let s = LatentSpace::sample(&mut rng, 60, 2, 6);
        let candidates: Vec<usize> = (0..60).collect();
        let mut cold_counts = std::collections::HashMap::new();
        let mut hot_counts = std::collections::HashMap::new();
        for _ in 0..300 {
            *cold_counts
                .entry(s.choose_tail(&mut rng, 0, 0, &candidates, 0.05))
                .or_insert(0usize) += 1;
            *hot_counts
                .entry(s.choose_tail(&mut rng, 0, 0, &candidates, 5.0))
                .or_insert(0usize) += 1;
        }
        assert!(
            cold_counts.len() < hot_counts.len(),
            "cold {} !< hot {}",
            cold_counts.len(),
            hot_counts.len()
        );
    }

    #[test]
    fn plausibility_is_finite_and_non_positive() {
        let mut rng = seeded_rng(4);
        let s = LatentSpace::sample(&mut rng, 10, 2, 5);
        for e in 0..10 {
            for t in 0..10 {
                let p = s.plausibility(e, 0, t);
                assert!(p.is_finite());
                assert!(p <= 0.0, "negative distance cannot be positive");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_are_rejected() {
        let mut rng = seeded_rng(5);
        let s = LatentSpace::sample(&mut rng, 10, 1, 4);
        let _ = s.choose_tail(&mut rng, 0, 0, &[], 1.0);
    }
}
