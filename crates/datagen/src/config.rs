//! Generator configuration.

use serde::{Deserialize, Serialize};

/// How relations are distributed over the four cardinality classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CardinalityMix {
    /// Fraction of 1-1 relations.
    pub one_to_one: f64,
    /// Fraction of 1-N relations.
    pub one_to_many: f64,
    /// Fraction of N-1 relations.
    pub many_to_one: f64,
    /// Fraction of N-N relations.
    pub many_to_many: f64,
}

impl CardinalityMix {
    /// The mix reported for WordNet/Freebase-style graphs: mostly N-N with a
    /// sizeable minority of the asymmetric classes.
    pub fn realistic() -> Self {
        Self {
            one_to_one: 0.15,
            one_to_many: 0.25,
            many_to_one: 0.25,
            many_to_many: 0.35,
        }
    }

    /// A uniform mix (used in tests).
    pub fn uniform() -> Self {
        Self {
            one_to_one: 0.25,
            one_to_many: 0.25,
            many_to_one: 0.25,
            many_to_many: 0.25,
        }
    }

    fn normalised(&self) -> [f64; 4] {
        let total = self.one_to_one + self.one_to_many + self.many_to_one + self.many_to_many;
        assert!(total > 0.0, "cardinality mix must have positive total");
        [
            self.one_to_one / total,
            self.one_to_many / total,
            self.many_to_one / total,
            self.many_to_many / total,
        ]
    }

    /// Assign a cardinality class (0 = 1-1, 1 = 1-N, 2 = N-1, 3 = N-N) to each
    /// of `n` relations, deterministically rounding the requested fractions.
    pub fn assign(&self, n: usize) -> Vec<usize> {
        let fractions = self.normalised();
        let mut assignment = Vec::with_capacity(n);
        for (class, fraction) in fractions.iter().enumerate() {
            let count = (fraction * n as f64).round() as usize;
            for _ in 0..count {
                if assignment.len() < n {
                    assignment.push(class);
                }
            }
        }
        while assignment.len() < n {
            assignment.push(3); // fill any rounding gap with N-N
        }
        assignment
    }
}

/// Full description of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Dataset name.
    pub name: String,
    /// Number of entities.
    pub num_entities: usize,
    /// Number of *base* relations (inverse duplicates are added on top).
    pub num_relations: usize,
    /// Target number of training triples.
    pub num_train: usize,
    /// Target number of validation triples.
    pub num_valid: usize,
    /// Target number of test triples.
    pub num_test: usize,
    /// Dimension of the latent ground-truth factors.
    pub latent_dim: usize,
    /// Zipf exponent of entity popularity (0 = uniform, ~1 = realistic skew).
    pub zipf_exponent: f64,
    /// Fraction of base relations that get a near-inverse duplicate partner
    /// (WN18/FB15K ≈ high, WN18RR/FB15K237 = 0).
    pub inverse_fraction: f64,
    /// Probability that a triple of a paired relation is mirrored into its
    /// inverse partner.
    pub inverse_mirror_probability: f64,
    /// Relation cardinality mix.
    pub cardinality: CardinalityMix,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A small, quick-to-generate default used by examples and tests.
    pub fn small(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            num_entities: 500,
            num_relations: 12,
            num_train: 4_000,
            num_valid: 300,
            num_test: 300,
            latent_dim: 12,
            zipf_exponent: 0.8,
            inverse_fraction: 0.0,
            inverse_mirror_probability: 0.9,
            cardinality: CardinalityMix::realistic(),
            seed: 0,
        }
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of relations after inverse duplicates are added.
    pub fn total_relations(&self) -> usize {
        self.num_relations + (self.num_relations as f64 * self.inverse_fraction).round() as usize
    }

    /// Basic sanity validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_entities < 10 {
            return Err("need at least 10 entities".into());
        }
        if self.num_relations == 0 {
            return Err("need at least one relation".into());
        }
        if self.num_train == 0 {
            return Err("need at least one training triple".into());
        }
        if self.latent_dim == 0 {
            return Err("latent dimension must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.inverse_fraction) {
            return Err("inverse_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.inverse_mirror_probability) {
            return Err("inverse_mirror_probability must be in [0,1]".into());
        }
        if self.zipf_exponent < 0.0 {
            return Err("zipf_exponent must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_assignment_covers_all_relations() {
        let mix = CardinalityMix::realistic();
        let a = mix.assign(20);
        assert_eq!(a.len(), 20);
        assert!(a.iter().all(|c| *c < 4));
        // realistic mix has every class represented at n = 20
        for class in 0..4 {
            assert!(a.contains(&class), "missing class {class}");
        }
    }

    #[test]
    fn mix_assignment_handles_tiny_counts() {
        let a = CardinalityMix::uniform().assign(1);
        assert_eq!(a.len(), 1);
        let a = CardinalityMix::uniform().assign(0);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn zero_mix_is_rejected() {
        let mix = CardinalityMix {
            one_to_one: 0.0,
            one_to_many: 0.0,
            many_to_one: 0.0,
            many_to_many: 0.0,
        };
        let _ = mix.assign(4);
    }

    #[test]
    fn small_config_is_valid() {
        assert!(GeneratorConfig::small("t").validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_reported() {
        let mut c = GeneratorConfig::small("t");
        c.num_entities = 3;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::small("t");
        c.num_relations = 0;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::small("t");
        c.inverse_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::small("t");
        c.num_train = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn total_relations_includes_inverse_partners() {
        let mut c = GeneratorConfig::small("t");
        c.num_relations = 10;
        c.inverse_fraction = 0.5;
        assert_eq!(c.total_relations(), 15);
        c.inverse_fraction = 0.0;
        assert_eq!(c.total_relations(), 10);
    }

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(GeneratorConfig::small("t").with_seed(9).seed, 9);
    }
}
