//! Presets mirroring the four benchmarks of the paper's Table II.
//!
//! Every preset takes a `scale ∈ (0, 1]` that multiplies the entity and
//! triple counts of the real dataset, so experiments can be run at laptop
//! scale (the default in the experiment binaries is `scale = 0.02…0.05`) or,
//! with `scale = 1.0`, at the paper's full size. The relation counts are
//! scaled more gently (they saturate quickly) and never drop below a small
//! minimum so the cardinality mix stays meaningful.

use crate::config::{CardinalityMix, GeneratorConfig};
use crate::generator::generate;
use nscaching_kg::{Dataset, KgError};
use serde::{Deserialize, Serialize};

/// The four benchmark families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkFamily {
    /// WordNet-18 analogue (contains inverse-duplicate relations).
    Wn18,
    /// WordNet-18-RR analogue (inverse duplicates removed).
    Wn18rr,
    /// Freebase-15K analogue (contains inverse/near-duplicate relations).
    Fb15k,
    /// Freebase-15K-237 analogue (near-duplicates removed).
    Fb15k237,
}

impl BenchmarkFamily {
    /// All four families in the order of Table II.
    pub const ALL: [BenchmarkFamily; 4] = [
        BenchmarkFamily::Wn18,
        BenchmarkFamily::Wn18rr,
        BenchmarkFamily::Fb15k,
        BenchmarkFamily::Fb15k237,
    ];

    /// Canonical lowercase name used in file paths and reports.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkFamily::Wn18 => "wn18",
            BenchmarkFamily::Wn18rr => "wn18rr",
            BenchmarkFamily::Fb15k => "fb15k",
            BenchmarkFamily::Fb15k237 => "fb15k237",
        }
    }

    /// Build the generator configuration for this family at the given scale.
    pub fn config(&self, scale: f64, seed: u64) -> GeneratorConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        // Real statistics from Table II of the paper:
        //   dataset   #entity  #relation  #train   #valid  #test
        //   WN18       40,943      18     141,442   5,000   5,000
        //   WN18RR     40,943      11      86,835   3,034   3,134
        //   FB15K      14,951   1,345     484,142  50,000  59,071
        //   FB15K237   14,541     237     272,115  17,535  20,466
        // (The paper's Table II lists 93,003 entities for WN18RR, which is a
        //  typo in the original; the released benchmark has 40,943.)
        let (entities, relations, train, valid, test, inverse_fraction, zipf) = match self {
            BenchmarkFamily::Wn18 => (40_943, 18, 141_442, 5_000, 5_000, 0.7, 0.75),
            BenchmarkFamily::Wn18rr => (40_943, 11, 86_835, 3_034, 3_134, 0.0, 0.75),
            BenchmarkFamily::Fb15k => (14_951, 1_345, 484_142, 50_000, 59_071, 0.5, 1.0),
            BenchmarkFamily::Fb15k237 => (14_541, 237, 272_115, 17_535, 20_466, 0.0, 1.0),
        };
        let scale_rel = scale.sqrt(); // relations saturate faster than entities
        let num_relations = (((relations as f64) * scale_rel).round() as usize).clamp(6, relations);
        // Inverse partners are added on top of the base count, so subtract
        // them from the base to keep the total close to the real count.
        let base_relations = ((num_relations as f64) / (1.0 + inverse_fraction))
            .round()
            .max(4.0) as usize;
        GeneratorConfig {
            name: format!("{}-synthetic", self.name()),
            num_entities: ((entities as f64 * scale).round() as usize).max(64),
            num_relations: base_relations,
            num_train: ((train as f64 * scale).round() as usize).max(500),
            num_valid: ((valid as f64 * scale).round() as usize).max(50),
            num_test: ((test as f64 * scale).round() as usize).max(50),
            latent_dim: 16,
            zipf_exponent: zipf,
            inverse_fraction,
            inverse_mirror_probability: 0.9,
            cardinality: CardinalityMix::realistic(),
            seed,
        }
    }

    /// Generate the dataset for this family.
    pub fn generate(&self, scale: f64, seed: u64) -> Result<Dataset, KgError> {
        generate(&self.config(scale, seed))
    }
}

/// WN18 analogue at the given scale.
pub fn wn18_like(scale: f64, seed: u64) -> Result<Dataset, KgError> {
    BenchmarkFamily::Wn18.generate(scale, seed)
}

/// WN18RR analogue at the given scale.
pub fn wn18rr_like(scale: f64, seed: u64) -> Result<Dataset, KgError> {
    BenchmarkFamily::Wn18rr.generate(scale, seed)
}

/// FB15K analogue at the given scale.
pub fn fb15k_like(scale: f64, seed: u64) -> Result<Dataset, KgError> {
    BenchmarkFamily::Fb15k.generate(scale, seed)
}

/// FB15K237 analogue at the given scale.
pub fn fb15k237_like(scale: f64, seed: u64) -> Result<Dataset, KgError> {
    BenchmarkFamily::Fb15k237.generate(scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_scale_with_the_scale_factor() {
        let small = BenchmarkFamily::Wn18.config(0.01, 0);
        let large = BenchmarkFamily::Wn18.config(0.1, 0);
        assert!(small.num_entities < large.num_entities);
        assert!(small.num_train < large.num_train);
        assert!(large.num_train <= 141_442);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_is_rejected() {
        let _ = BenchmarkFamily::Wn18.config(0.0, 0);
    }

    #[test]
    fn wn18_analogue_has_inverse_relations_and_rr_does_not() {
        let wn18 = BenchmarkFamily::Wn18.config(0.01, 0);
        let wn18rr = BenchmarkFamily::Wn18rr.config(0.01, 0);
        assert!(wn18.inverse_fraction > 0.0);
        assert_eq!(wn18rr.inverse_fraction, 0.0);
    }

    #[test]
    fn small_scale_generation_works_for_all_families() {
        for family in BenchmarkFamily::ALL {
            let ds = family.generate(0.005, 7).unwrap();
            assert!(
                ds.train.len() >= 400,
                "{}: {}",
                family.name(),
                ds.train.len()
            );
            assert!(!ds.valid.is_empty());
            assert!(!ds.test.is_empty());
            assert!(ds.name.contains(family.name()));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BenchmarkFamily::Wn18.name(), "wn18");
        assert_eq!(BenchmarkFamily::Fb15k237.name(), "fb15k237");
        assert_eq!(BenchmarkFamily::ALL.len(), 4);
    }
}
