//! Property test: the slab-backed gradient engine (`GradientArena` +
//! dense-slab optimizers) is bit-identical to the retired `HashMap` engine
//! (`GradientBuffer` + per-row-`HashMap`-state optimizers) across
//!
//! * all 7 scoring functions (their `accumulate_score_gradient` emission
//!   drives both sinks through the shared `GradientSink` trait),
//! * ragged per-shard touch sets merged in ascending shard order at
//!   shards ∈ {1, 2, 4},
//! * all three optimizers, over multiple accumulate → merge → apply rounds
//!   (so stateful moments and bias-correction counters are exercised).
//!
//! The references below are line-for-line copies of the retired optimizers:
//! `HashMap` state, updates applied in hash-map iteration order. Per-row
//! updates are independent, so the arena's sorted-slot walk must land on
//! exactly the same parameter bits.

use nscaching_kg::Triple;
use nscaching_models::{
    build_model, GradientArena, GradientBuffer, KgeModel, ModelConfig, ModelKind, TableId,
};
use nscaching_optim::{AdaGrad, Adam, Optimizer, Sgd};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference Adam row state: first moments, second moments, step count.
type AdamRowState = (Vec<f64>, Vec<f64>, u64);

const ENTITIES: usize = 14;
const RELATIONS: usize = 3;

/// The retired `HashMap`-state optimizers, one `step` each, verbatim.
enum ReferenceOptimizer {
    Sgd {
        lr: f64,
    },
    AdaGrad {
        lr: f64,
        eps: f64,
        acc: HashMap<(TableId, usize), Vec<f64>>,
    },
    Adam {
        lr: f64,
        b1: f64,
        b2: f64,
        eps: f64,
        state: HashMap<(TableId, usize), AdamRowState>,
    },
}

impl ReferenceOptimizer {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &GradientBuffer) -> Vec<(TableId, usize)> {
        let mut tables = model.tables_mut();
        let mut touched = Vec::with_capacity(grads.len());
        match self {
            ReferenceOptimizer::Sgd { lr } => {
                for (&(table, row), grad) in grads.iter() {
                    let params = tables[table].row_mut(row);
                    for (p, g) in params.iter_mut().zip(grad) {
                        *p -= *lr * g;
                    }
                    touched.push((table, row));
                }
            }
            ReferenceOptimizer::AdaGrad { lr, eps, acc } => {
                for (&(table, row), grad) in grads.iter() {
                    let a = acc
                        .entry((table, row))
                        .or_insert_with(|| vec![0.0; grad.len()]);
                    let params = tables[table].row_mut(row);
                    for ((p, g), a) in params.iter_mut().zip(grad).zip(a.iter_mut()) {
                        *a += g * g;
                        *p -= *lr * g / (a.sqrt() + *eps);
                    }
                    touched.push((table, row));
                }
            }
            ReferenceOptimizer::Adam {
                lr,
                b1,
                b2,
                eps,
                state,
            } => {
                for (&(table, row), grad) in grads.iter() {
                    let (m, v, t) = state
                        .entry((table, row))
                        .or_insert_with(|| (vec![0.0; grad.len()], vec![0.0; grad.len()], 0));
                    *t += 1;
                    let bias1 = 1.0 - b1.powi(*t as i32);
                    let bias2 = 1.0 - b2.powi(*t as i32);
                    let params = tables[table].row_mut(row);
                    for i in 0..grad.len() {
                        let g = grad[i];
                        m[i] = *b1 * m[i] + (1.0 - *b1) * g;
                        v[i] = *b2 * v[i] + (1.0 - *b2) * g * g;
                        let m_hat = m[i] / bias1;
                        let v_hat = v[i] / bias2;
                        params[i] -= *lr * m_hat / (v_hat.sqrt() + *eps);
                    }
                    touched.push((table, row));
                }
            }
        }
        touched
    }
}

fn reference_optimizer(kind: usize, lr: f64) -> ReferenceOptimizer {
    match kind {
        0 => ReferenceOptimizer::Sgd { lr },
        1 => ReferenceOptimizer::AdaGrad {
            lr,
            eps: 1e-10,
            acc: HashMap::new(),
        },
        _ => ReferenceOptimizer::Adam {
            lr,
            b1: 0.9,
            b2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        },
    }
}

fn arena_optimizer(kind: usize, lr: f64) -> Box<dyn Optimizer> {
    match kind {
        0 => Box::new(Sgd::new(lr)),
        1 => Box::new(AdaGrad::new(lr)),
        _ => Box::new(Adam::new(lr)),
    }
}

fn assert_tables_bit_identical(a: &dyn KgeModel, b: &dyn KgeModel) -> Result<(), TestCaseError> {
    for (ta, tb) in a.tables().iter().zip(b.tables()) {
        prop_assert_eq!(ta.data().len(), tb.data().len());
        for (x, y) in ta.data().iter().zip(tb.data()) {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "table {} diverged: {} vs {}",
                ta.name(),
                x,
                y
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accumulate_merge_apply_is_bit_identical_to_the_hashmap_engine(
        kind_idx in 0usize..7,
        shards_idx in 0usize..3,
        opt_kind in 0usize..3,
        model_seed in 0u64..1000,
        examples in prop::collection::vec(
            (0u32..ENTITIES as u32, 0u32..RELATIONS as u32, 0u32..ENTITIES as u32, -2.0f64..2.0),
            1..24,
        ),
        rounds in 1usize..3,
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let shards = [1usize, 2, 4][shards_idx];
        let config = ModelConfig::new(kind).with_dim(4).with_seed(model_seed);
        // Two identically-initialised models, one per engine.
        let mut arena_model = build_model(&config, ENTITIES, RELATIONS);
        let mut reference_model = build_model(&config, ENTITIES, RELATIONS);

        let mut arena_opt = arena_optimizer(opt_kind, 0.05);
        arena_opt.bind(arena_model.as_ref());
        let mut reference_opt = reference_optimizer(opt_kind, 0.05);

        // Reused across rounds, like the trainer's buffers.
        let mut shard_arenas: Vec<GradientArena> =
            (0..shards).map(|_| GradientArena::new()).collect();
        let mut shard_buffers: Vec<GradientBuffer> =
            (0..shards).map(|_| GradientBuffer::new()).collect();
        let mut merged_arena = GradientArena::new();
        let mut merged_buffer = GradientBuffer::new();

        for round in 0..rounds {
            // Ragged shard split: shard s gets every (s + round)-offset
            // example, so some shards can be empty and splits differ by round.
            for arena in &mut shard_arenas {
                arena.clear();
            }
            for buffer in &mut shard_buffers {
                buffer.clear();
            }
            for (i, &(h, r, t, coeff)) in examples.iter().enumerate() {
                let triple = Triple::new(h, r, t);
                let shard = (i + round) % shards;
                // Each engine accumulates from its own model (identical bits
                // by induction over rounds).
                arena_model.accumulate_score_gradient(&triple, coeff, &mut shard_arenas[shard]);
                reference_model.accumulate_score_gradient(
                    &triple,
                    coeff,
                    &mut shard_buffers[shard],
                );
            }

            // Ascending-shard-order merge, exactly like the trainer.
            merged_arena.clear();
            merged_buffer.clear();
            for (arena, buffer) in shard_arenas.iter_mut().zip(&shard_buffers) {
                merged_arena.merge(arena);
                merged_buffer.merge(buffer);
            }

            // Accumulated values and norms must already agree bit-for-bit.
            prop_assert_eq!(merged_arena.len(), merged_buffer.len());
            prop_assert_eq!(
                merged_arena.squared_norm().to_bits(),
                merged_buffer.squared_norm().to_bits()
            );
            for (table, row, grad) in merged_arena.rows().iter() {
                let reference = merged_buffer.get(table, row);
                prop_assert!(reference.is_some(), "({}, {}) missing in reference", table, row);
                let reference = reference.unwrap();
                prop_assert_eq!(grad.len(), reference.len());
                for (x, y) in grad.iter().zip(reference) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }

            // Apply + constraints, exactly like the trainer's stage 4.
            if !merged_arena.is_empty() {
                arena_opt.step(arena_model.as_mut(), &mut merged_arena);
                arena_model.apply_constraints(merged_arena.touched());
                let touched = reference_opt.step(reference_model.as_mut(), &merged_buffer);
                reference_model.apply_constraints(&touched);
            }
            assert_tables_bit_identical(arena_model.as_ref(), reference_model.as_ref())?;
        }
    }
}
