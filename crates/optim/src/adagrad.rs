//! AdaGrad (Duchi et al., 2011) with dense per-table accumulator slabs.
//!
//! The per-component sum of squared gradients `G` lives in one contiguous
//! `rows × dim` slab per parameter table (see the crate docs for the layout
//! rationale); a touched row's accumulator is an array index away instead of
//! a hash-map lookup, and [`Optimizer::bind`] pre-sizes the slabs so `step`
//! never allocates.

use crate::optimizer::{AdaGradTableState, Optimizer, OptimizerState};
use nscaching_models::{GradientArena, KgeModel};

/// One table's accumulator slab.
#[derive(Debug, Clone, Default)]
struct TableAcc {
    dim: usize,
    /// `rows × dim` squared-gradient sums, row-major.
    acc: Vec<f64>,
    /// Which rows have ever received a gradient (drives `state_rows`).
    seen: Vec<bool>,
}

impl TableAcc {
    /// Grow the slab (if needed) to hold `row`.
    ///
    /// A bound optimizer never grows here — `bind` sized every slab to its
    /// table — so the steady-state step stays allocation-free.
    #[inline]
    fn ensure_row(&mut self, row: usize) {
        if self.seen.len() <= row {
            let rows = (row + 1).next_power_of_two().max(8);
            self.acc.resize(rows * self.dim, 0.0);
            self.seen.resize(rows, false);
        }
    }
}

/// Resolve (growing if needed) the slab for `table`, fixing its dimension on
/// first touch. Called once per table *run* of the grouped apply walk.
fn slab_for(tables: &mut Vec<TableAcc>, table: usize, dim: usize) -> &mut TableAcc {
    if table >= tables.len() {
        tables.resize_with(table + 1, TableAcc::default);
    }
    let slab = &mut tables[table];
    if slab.dim == 0 {
        slab.dim = dim;
    }
    debug_assert_eq!(slab.dim, dim, "gradient dimension mismatch");
    slab
}

/// `θ ← θ − η·g / (√G + ε)` with `G` the per-component sum of squared
/// gradients, stored in dense per-table slabs.
#[derive(Debug, Clone)]
pub struct AdaGrad {
    learning_rate: f64,
    epsilon: f64,
    tables: Vec<TableAcc>,
    live_rows: usize,
}

impl AdaGrad {
    /// Create an AdaGrad optimizer with learning rate `η` and `ε = 1e-10`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self {
            learning_rate,
            epsilon: 1e-10,
            tables: Vec::new(),
            live_rows: 0,
        }
    }

    /// Number of rows with live state (used in tests and memory reports).
    pub fn state_rows(&self) -> usize {
        self.live_rows
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &mut GradientArena) {
        let lr = self.learning_rate;
        let eps = self.epsilon;
        // Grouped per-table walk: slab and parameter table (a virtual
        // `table_mut` dispatch) resolved once per table run; row order and
        // arithmetic unchanged, so trajectories stay bit-identical.
        for (table_id, run) in grads.rows().by_table() {
            let slab = slab_for(&mut self.tables, table_id, run.dim());
            let table = model.table_mut(table_id);
            for (row, grad) in run.iter() {
                slab.ensure_row(row);
                if !slab.seen[row] {
                    slab.seen[row] = true;
                    self.live_rows += 1;
                }
                let base = row * slab.dim;
                let acc = &mut slab.acc[base..base + slab.dim];
                let params = table.row_mut(row);
                for ((p, g), a) in params.iter_mut().zip(grad).zip(acc.iter_mut()) {
                    *a += g * g;
                    *p -= lr * g / (a.sqrt() + eps);
                }
            }
        }
    }

    fn bind(&mut self, model: &dyn KgeModel) {
        for (table, t) in model.tables().iter().enumerate() {
            if table >= self.tables.len() {
                self.tables.resize_with(table + 1, TableAcc::default);
            }
            let slab = &mut self.tables[table];
            if slab.dim == 0 {
                slab.dim = t.dim();
            }
            if slab.seen.len() < t.rows() {
                slab.acc.resize(t.rows() * t.dim(), 0.0);
                slab.seen.resize(t.rows(), false);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn reset(&mut self) {
        for slab in &mut self.tables {
            slab.acc.fill(0.0);
            slab.seen.fill(false);
        }
        self.live_rows = 0;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::AdaGrad {
            tables: self
                .tables
                .iter()
                .map(|slab| AdaGradTableState {
                    dim: slab.dim,
                    acc: slab.acc.clone(),
                    seen: slab.seen.clone(),
                })
                .collect(),
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        let OptimizerState::AdaGrad { tables } = state else {
            return Err(format!(
                "cannot import {:?} state into AdaGrad",
                state.kind()
            ));
        };
        for (i, slab) in tables.iter().enumerate() {
            if slab.acc.len() != slab.seen.len() * slab.dim {
                return Err(format!(
                    "AdaGrad table {i}: accumulator length {} does not match {} rows × dim {}",
                    slab.acc.len(),
                    slab.seen.len(),
                    slab.dim
                ));
            }
        }
        self.live_rows = tables
            .iter()
            .flat_map(|slab| slab.seen.iter())
            .filter(|&&seen| seen)
            .count();
        self.tables = tables
            .into_iter()
            .map(|slab| TableAcc {
                dim: slab.dim,
                acc: slab.acc,
                seen: slab.seen,
            })
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{DistMult, KgeModel};

    fn model() -> DistMult {
        let mut rng = seeded_rng(3);
        let mut m = DistMult::new(2, 1, 2, &mut rng);
        m.tables_mut()[0].set_row(0, &[0.0, 0.0]);
        m
    }

    #[test]
    fn first_step_is_learning_rate_sized() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[2.0, -4.0], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.step(&mut m, &mut grads);
        // each component: -lr * g/|g| = ∓lr (sign of g)
        let row = m.tables()[0].row(0);
        assert!((row[0] + 0.1).abs() < 1e-6);
        assert!((row[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn repeated_gradients_shrink_the_effective_step() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[1.0, 1.0], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.step(&mut m, &mut grads);
        let after_first = m.tables()[0].row(0)[0];
        opt.step(&mut m, &mut grads);
        let after_second = m.tables()[0].row(0)[0];
        let first_step = (0.0 - after_first).abs();
        let second_step = (after_first - after_second).abs();
        assert!(second_step < first_step, "{second_step} !< {first_step}");
    }

    #[test]
    fn state_grows_only_for_touched_rows_and_reset_clears_it() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 1, &[1.0, 1.0], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.bind(&m);
        opt.step(&mut m, &mut grads);
        assert_eq!(opt.state_rows(), 1);
        opt.reset();
        assert_eq!(opt.state_rows(), 0);
    }

    #[test]
    fn bound_and_unbound_states_apply_identical_updates() {
        let mut bound_model = model();
        let mut lazy_model = model();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[0.7, -0.3], 1.0);
        grads.add(1, 0, &[0.2, 0.9], -0.5);
        let mut bound = AdaGrad::new(0.1);
        bound.bind(&bound_model);
        let mut lazy = AdaGrad::new(0.1);
        for _ in 0..3 {
            bound.step(&mut bound_model, &mut grads);
            lazy.step(&mut lazy_model, &mut grads);
        }
        for (a, b) in bound_model.tables().iter().zip(lazy_model.tables()) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(bound.state_rows(), lazy.state_rows());
    }

    #[test]
    fn state_export_import_round_trips_and_rejects_foreign_kinds() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 1, &[0.5, -0.5], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.bind(&m);
        opt.step(&mut m, &mut grads);
        let state = opt.export_state();
        let mut fresh = AdaGrad::new(0.1);
        fresh.import_state(state.clone()).unwrap();
        assert_eq!(fresh.export_state(), state);
        assert_eq!(fresh.state_rows(), 1);
        assert!(fresh.import_state(OptimizerState::Sgd).is_err());
    }
}
