//! AdaGrad (Duchi et al., 2011) with sparse per-row accumulators.

use crate::optimizer::Optimizer;
use nscaching_models::{GradientBuffer, KgeModel, TableId};
use std::collections::HashMap;

/// `θ ← θ − η·g / (√G + ε)` with `G` the per-component sum of squared
/// gradients. State is stored only for rows that have ever been updated.
#[derive(Debug, Clone)]
pub struct AdaGrad {
    learning_rate: f64,
    epsilon: f64,
    accumulators: HashMap<(TableId, usize), Vec<f64>>,
}

impl AdaGrad {
    /// Create an AdaGrad optimizer with learning rate `η` and `ε = 1e-10`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self {
            learning_rate,
            epsilon: 1e-10,
            accumulators: HashMap::new(),
        }
    }

    /// Number of rows with live state (used in tests and memory reports).
    pub fn state_rows(&self) -> usize {
        self.accumulators.len()
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &GradientBuffer) -> Vec<(TableId, usize)> {
        let lr = self.learning_rate;
        let eps = self.epsilon;
        let mut tables = model.tables_mut();
        let mut touched = Vec::with_capacity(grads.len());
        for (&(table, row), grad) in grads.iter() {
            let acc = self
                .accumulators
                .entry((table, row))
                .or_insert_with(|| vec![0.0; grad.len()]);
            let params = tables[table].row_mut(row);
            for ((p, g), a) in params.iter_mut().zip(grad).zip(acc.iter_mut()) {
                *a += g * g;
                *p -= lr * g / (a.sqrt() + eps);
            }
            touched.push((table, row));
        }
        touched
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn reset(&mut self) {
        self.accumulators.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{DistMult, KgeModel};

    fn model() -> DistMult {
        let mut rng = seeded_rng(3);
        let mut m = DistMult::new(2, 1, 2, &mut rng);
        m.tables_mut()[0].set_row(0, &[0.0, 0.0]);
        m
    }

    #[test]
    fn first_step_is_learning_rate_sized() {
        let mut m = model();
        let mut grads = GradientBuffer::new();
        grads.add(0, 0, &[2.0, -4.0], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.step(&mut m, &grads);
        // each component: -lr * g/|g| = ∓lr (sign of g)
        let row = m.tables()[0].row(0);
        assert!((row[0] + 0.1).abs() < 1e-6);
        assert!((row[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn repeated_gradients_shrink_the_effective_step() {
        let mut m = model();
        let mut grads = GradientBuffer::new();
        grads.add(0, 0, &[1.0, 1.0], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.step(&mut m, &grads);
        let after_first = m.tables()[0].row(0)[0];
        opt.step(&mut m, &grads);
        let after_second = m.tables()[0].row(0)[0];
        let first_step = (0.0 - after_first).abs();
        let second_step = (after_first - after_second).abs();
        assert!(second_step < first_step, "{second_step} !< {first_step}");
    }

    #[test]
    fn state_grows_only_for_touched_rows_and_reset_clears_it() {
        let mut m = model();
        let mut grads = GradientBuffer::new();
        grads.add(0, 1, &[1.0, 1.0], 1.0);
        let mut opt = AdaGrad::new(0.1);
        opt.step(&mut m, &grads);
        assert_eq!(opt.state_rows(), 1);
        opt.reset();
        assert_eq!(opt.state_rows(), 0);
    }
}
