//! Sparse first-order optimizers for embedding tables.
//!
//! A KG-embedding SGD step only touches a handful of parameter rows, so all
//! optimizer state (AdaGrad accumulators, Adam moments) is kept sparsely per
//! `(table, row)` and updated lazily — exactly the "lazy Adam" behaviour of
//! the PyTorch sparse optimizers the paper's reference implementation relies
//! on. The paper trains every model with Adam at its default hyper-parameters
//! except the learning rate (Section IV-A2); plain SGD and AdaGrad are
//! provided for the ablation benches.

pub mod adagrad;
pub mod adam;
pub mod optimizer;
pub mod sgd;

pub use adagrad::AdaGrad;
pub use adam::Adam;
pub use optimizer::{build_optimizer, Optimizer, OptimizerConfig, OptimizerKind};
pub use sgd::Sgd;
