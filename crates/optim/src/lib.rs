//! Sparse first-order optimizers for embedding tables.
//!
//! A KG-embedding SGD step only touches a handful of parameter rows, so
//! gradients arrive sparsely — as a
//! [`GradientArena`](nscaching_models::GradientArena) of touched rows — and
//! the stateful optimizers update their moments lazily per row, exactly the
//! "lazy Adam" behaviour of the PyTorch sparse optimizers the paper's
//! reference implementation relies on. The paper trains every model with Adam
//! at its default hyper-parameters except the learning rate (Section IV-A2);
//! plain SGD and AdaGrad are provided for the ablation benches.
//!
//! # State layout: dense per-table slabs
//!
//! [`AdaGrad`] and [`Adam`] keep their per-row state (squared-gradient
//! accumulators; first/second moments plus the per-row step counter of the
//! bias correction) in **dense per-table slabs indexed by row id**: one
//! `Vec<f64>` of `rows × dim` values per parameter table, plus one counter
//! per row for Adam. Reaching row `r`'s state is `&slab[r·dim .. (r+1)·dim]`
//! — an array index instead of the `HashMap<(TableId, usize), Vec<f64>>`
//! lookup (hash + probe + pointer chase to a scattered heap row) the previous
//! engine paid on every touched row of every batch. The slabs cost the same
//! memory as the model's own tables (twice for Adam), which is the standard
//! trade of production embedding trainers.
//!
//! Call [`Optimizer::bind`] once at construction time (the trainer and the
//! GAN samplers do) to pre-size every slab from the model's table dimensions;
//! after that a [`step`](Optimizer::step) performs **no heap allocation** —
//! previously Adam allocated two `Vec<f64>`s on the first touch of every row
//! mid-epoch. Unbound optimizers still work (slabs grow on demand), they just
//! lose the no-allocation guarantee.
//!
//! # Determinism: the sorted-slot contract
//!
//! [`Optimizer::step`] applies updates by walking the arena's **sorted
//! `(table, row)` slot list** (`GradientArena::rows`). Each row's update
//! touches only that row's parameters and state, so the result is independent
//! of walk order — but fixing the order anyway makes the whole apply stage a
//! pure function of the accumulated gradient values, with no dependence on
//! hash-map iteration order, across runs and platforms. Together with the
//! arena's ordered shard merge this is what makes parallel training
//! trajectories bit-reproducible (see `nscaching-train`'s concurrency model).
//!
//! # Plugging in a new optimizer
//!
//! Implement [`Optimizer`]:
//!
//! 1. in `step`, iterate `grads.rows().by_table()` — per-table runs of the
//!    ascending `(table, row)` order, one contiguous gradient slice per row —
//!    resolve the parameter table once per run (`model.table_mut(table)`,
//!    hoisting the virtual dispatch out of the row loop) and update
//!    `table.row_mut(row)` in place; keep the per-row math self-contained so
//!    the order-independence argument above holds;
//! 2. keep any per-row state in dense per-table slabs sized in
//!    [`bind`](Optimizer::bind) (see `AdaGrad` for the minimal template) so
//!    `step` stays allocation-free;
//! 3. leave constraint application to the caller: the trainer follows every
//!    step with `model.apply_constraints(grads.touched())`, which replays the
//!    same sorted slot list;
//! 4. add a variant to [`OptimizerKind`] and wire it in [`build_optimizer`];
//! 5. implement [`Optimizer::export_state`] / [`Optimizer::import_state`]
//!    (add an [`OptimizerState`] variant if the optimizer is stateful) so the
//!    checkpoint store in `nscaching-serve` can round-trip the slabs — the
//!    export must capture everything `step` reads, or resumed runs lose the
//!    exact-resume guarantee.

pub mod adagrad;
pub mod adam;
pub mod optimizer;
pub mod sgd;

pub use adagrad::AdaGrad;
pub use adam::Adam;
pub use optimizer::{
    build_optimizer, AdaGradTableState, AdamTableState, Optimizer, OptimizerConfig, OptimizerKind,
    OptimizerState,
};
pub use sgd::Sgd;
