//! Adam (Kingma & Ba, 2015) with sparse, lazily-updated per-row moments in
//! dense per-table slabs.
//!
//! The paper uses Adam "with its default settings, except for the learning
//! rate" (Section IV-A2). Moments are updated only for rows that receive
//! gradients, and bias correction uses a per-row step counter — the standard
//! "lazy Adam" variant for sparse embedding training. The first/second
//! moments live in one contiguous `rows × dim` slab per parameter table and
//! the step counters in one `rows` slab (see the crate docs), so a touched
//! row's state is two array indexes — no hashing, and, once
//! [`Optimizer::bind`] has pre-sized the slabs, no allocation inside `step`
//! (the `HashMap` predecessor allocated two fresh `Vec<f64>`s on the first
//! touch of every row mid-epoch).

use crate::optimizer::{AdamTableState, Optimizer, OptimizerState};
use nscaching_models::{GradientArena, KgeModel};

/// One table's moment slabs.
#[derive(Debug, Clone, Default)]
struct TableMoments {
    dim: usize,
    /// First moments, `rows × dim` row-major.
    m: Vec<f64>,
    /// Second moments, `rows × dim` row-major.
    v: Vec<f64>,
    /// Per-row step counters for the bias correction (0 = never touched).
    t: Vec<u64>,
}

impl TableMoments {
    /// Grow the slab (if needed) to hold `row`. A bound optimizer never grows
    /// here.
    #[inline]
    fn ensure_row(&mut self, row: usize) {
        if self.t.len() <= row {
            let rows = (row + 1).next_power_of_two().max(8);
            self.m.resize(rows * self.dim, 0.0);
            self.v.resize(rows * self.dim, 0.0);
            self.t.resize(rows, 0);
        }
    }
}

/// Resolve (growing if needed) the slab for `table`, fixing its dimension on
/// first touch. Called once per table *run* of the grouped apply walk.
fn slab_for(tables: &mut Vec<TableMoments>, table: usize, dim: usize) -> &mut TableMoments {
    if table >= tables.len() {
        tables.resize_with(table + 1, TableMoments::default);
    }
    let slab = &mut tables[table];
    if slab.dim == 0 {
        slab.dim = dim;
    }
    debug_assert_eq!(slab.dim, dim, "gradient dimension mismatch");
    slab
}

/// Adam with per-row first/second moments in dense per-table slabs.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    tables: Vec<TableMoments>,
    live_rows: usize,
}

impl Adam {
    /// Create an Adam optimizer with the default `β₁ = 0.9`, `β₂ = 0.999`,
    /// `ε = 1e-8`.
    pub fn new(learning_rate: f64) -> Self {
        Self::with_betas(learning_rate, 0.9, 0.999)
    }

    /// Create an Adam optimizer with explicit momentum coefficients.
    pub fn with_betas(learning_rate: f64, beta1: f64, beta2: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        Self {
            learning_rate,
            beta1,
            beta2,
            epsilon: 1e-8,
            tables: Vec::new(),
            live_rows: 0,
        }
    }

    /// Number of rows with live moment state.
    pub fn state_rows(&self) -> usize {
        self.live_rows
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &mut GradientArena) {
        let (lr, b1, b2, eps) = (self.learning_rate, self.beta1, self.beta2, self.epsilon);
        // Grouped per-table walk over the sorted slot list: the moment slab
        // and the parameter table (a virtual `table_mut` dispatch) are
        // resolved once per table run instead of once per row. Row visit
        // order and per-element arithmetic are unchanged, so trajectories
        // stay bit-identical to the flat walk.
        for (table_id, run) in grads.rows().by_table() {
            let slab = slab_for(&mut self.tables, table_id, run.dim());
            let table = model.table_mut(table_id);
            for (row, grad) in run.iter() {
                slab.ensure_row(row);
                slab.t[row] += 1;
                let steps = slab.t[row];
                if steps == 1 {
                    self.live_rows += 1;
                }
                let bias1 = 1.0 - b1.powi(steps as i32);
                let bias2 = 1.0 - b2.powi(steps as i32);
                let base = row * slab.dim;
                let m = &mut slab.m[base..base + slab.dim];
                let v = &mut slab.v[base..base + slab.dim];
                let params = table.row_mut(row);
                // Zipped (bounds-check-free) walk so the sqrt/div chain
                // vectorises; per-element operations and their order are
                // exactly the retired HashMap engine's, so the parameters
                // stay bit-identical (asserted by the arena_equivalence
                // proptests).
                for (((p, &g), m), v) in params
                    .iter_mut()
                    .zip(grad)
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    *m = b1 * *m + (1.0 - b1) * g;
                    *v = b2 * *v + (1.0 - b2) * g * g;
                    let m_hat = *m / bias1;
                    let v_hat = *v / bias2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    fn bind(&mut self, model: &dyn KgeModel) {
        for (table, t) in model.tables().iter().enumerate() {
            if table >= self.tables.len() {
                self.tables.resize_with(table + 1, TableMoments::default);
            }
            let slab = &mut self.tables[table];
            if slab.dim == 0 {
                slab.dim = t.dim();
            }
            if slab.t.len() < t.rows() {
                slab.m.resize(t.rows() * t.dim(), 0.0);
                slab.v.resize(t.rows() * t.dim(), 0.0);
                slab.t.resize(t.rows(), 0);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn reset(&mut self) {
        for slab in &mut self.tables {
            slab.m.fill(0.0);
            slab.v.fill(0.0);
            slab.t.fill(0);
        }
        self.live_rows = 0;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Adam {
            tables: self
                .tables
                .iter()
                .map(|slab| AdamTableState {
                    dim: slab.dim,
                    m: slab.m.clone(),
                    v: slab.v.clone(),
                    t: slab.t.clone(),
                })
                .collect(),
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        let OptimizerState::Adam { tables } = state else {
            return Err(format!("cannot import {:?} state into Adam", state.kind()));
        };
        for (i, slab) in tables.iter().enumerate() {
            let expected = slab.t.len() * slab.dim;
            if slab.m.len() != expected || slab.v.len() != expected {
                return Err(format!(
                    "Adam table {i}: moment slab lengths ({}, {}) do not match {} rows × dim {}",
                    slab.m.len(),
                    slab.v.len(),
                    slab.t.len(),
                    slab.dim
                ));
            }
        }
        self.live_rows = tables
            .iter()
            .flat_map(|slab| slab.t.iter())
            .filter(|&&t| t > 0)
            .count();
        self.tables = tables
            .into_iter()
            .map(|slab| TableMoments {
                dim: slab.dim,
                m: slab.m,
                v: slab.v,
                t: slab.t,
            })
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{DistMult, KgeModel};

    fn model() -> DistMult {
        let mut rng = seeded_rng(4);
        let mut m = DistMult::new(3, 1, 2, &mut rng);
        m.tables_mut()[0].set_row(0, &[0.0, 0.0]);
        m
    }

    #[test]
    fn first_step_size_is_close_to_learning_rate() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[10.0, -0.001], 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut m, &mut grads);
        let row = m.tables()[0].row(0);
        // Adam's first bias-corrected step is ≈ lr regardless of magnitude,
        // in the direction opposite to the gradient.
        assert!((row[0] + 0.01).abs() < 1e-6, "row[0] = {}", row[0]);
        assert!((row[1] - 0.01).abs() < 1e-6, "row[1] = {}", row[1]);
    }

    #[test]
    fn repeated_steps_descend_a_quadratic() {
        // minimise f(x) = x² with gradient 2x starting at x = 1
        let mut m = model();
        m.tables_mut()[0].set_row(1, &[1.0, 1.0]);
        let mut opt = Adam::new(0.05);
        opt.bind(&m);
        let mut grads = GradientArena::new();
        for _ in 0..200 {
            let x = m.tables()[0].row(1).to_vec();
            grads.clear();
            grads.add(0, 1, &[2.0 * x[0], 2.0 * x[1]], 1.0);
            opt.step(&mut m, &mut grads);
        }
        let x = m.tables()[0].row(1);
        assert!(x[0].abs() < 0.05, "x[0] = {}", x[0]);
        assert!(x[1].abs() < 0.05);
    }

    #[test]
    fn lazy_state_and_reset() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 2, &[1.0, 1.0], 1.0);
        grads.add(1, 0, &[1.0, 1.0], 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut m, &mut grads);
        assert_eq!(opt.state_rows(), 2);
        opt.reset();
        assert_eq!(opt.state_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "beta1 must be in [0,1)")]
    fn invalid_beta_is_rejected() {
        let _ = Adam::with_betas(0.01, 1.0, 0.999);
    }

    #[test]
    fn touched_rows_walk_in_sorted_order() {
        let mut m = model();
        let mut grads = GradientArena::new();
        grads.add(0, 1, &[1.0, 1.0], 1.0);
        grads.add(0, 0, &[1.0, 1.0], 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut m, &mut grads);
        assert_eq!(grads.touched(), &[(0, 0), (0, 1)]);
        assert_eq!(opt.state_rows(), 2);
    }

    #[test]
    fn bound_and_unbound_states_apply_identical_updates() {
        let mut bound_model = model();
        let mut lazy_model = model();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[0.7, -0.3], 1.0);
        grads.add(1, 0, &[0.2, 0.9], -0.5);
        let mut bound = Adam::new(0.01);
        bound.bind(&bound_model);
        let mut lazy = Adam::new(0.01);
        for _ in 0..3 {
            bound.step(&mut bound_model, &mut grads);
            lazy.step(&mut lazy_model, &mut grads);
        }
        for (a, b) in bound_model.tables().iter().zip(lazy_model.tables()) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(bound.state_rows(), lazy.state_rows());
    }

    #[test]
    fn exported_state_resumes_the_update_sequence_exactly() {
        let mut original_model = model();
        let mut resumed_model = model();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[0.4, -0.8], 1.0);
        grads.add(1, 0, &[0.1, 0.6], 1.0);
        let mut original = Adam::new(0.01);
        original.bind(&original_model);
        for _ in 0..4 {
            original.step(&mut original_model, &mut grads);
        }
        // Capture mid-run, import into a fresh optimizer, continue both.
        let state = original.export_state();
        let mut resumed = Adam::new(0.01);
        resumed.import_state(state.clone()).unwrap();
        resumed.bind(&original_model);
        assert_eq!(resumed.state_rows(), original.state_rows());
        assert_eq!(resumed.export_state(), state, "export/import round-trips");
        for (a, b) in original_model
            .tables()
            .iter()
            .zip(resumed_model.tables_mut())
        {
            b.data_mut().copy_from_slice(a.data());
        }
        for _ in 0..4 {
            original.step(&mut original_model, &mut grads);
            resumed.step(&mut resumed_model, &mut grads);
        }
        for (a, b) in original_model.tables().iter().zip(resumed_model.tables()) {
            assert!(
                a.data()
                    .iter()
                    .zip(b.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "resumed Adam diverged on {}",
                a.name()
            );
        }
    }

    #[test]
    fn importing_foreign_state_is_rejected() {
        let mut opt = Adam::new(0.01);
        let err = opt.import_state(OptimizerState::Sgd).unwrap_err();
        assert!(err.contains("Adam"), "{err}");
    }
}
