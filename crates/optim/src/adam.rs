//! Adam (Kingma & Ba, 2015) with sparse, lazily-updated per-row moments.
//!
//! The paper uses Adam "with its default settings, except for the learning
//! rate" (Section IV-A2). Moments are maintained only for rows that receive
//! gradients, and bias correction uses a per-row step counter — the standard
//! "lazy Adam" variant for sparse embedding training.

use crate::optimizer::Optimizer;
use nscaching_models::{GradientBuffer, KgeModel, TableId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct RowState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

/// Adam with per-row first/second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    state: HashMap<(TableId, usize), RowState>,
}

impl Adam {
    /// Create an Adam optimizer with the default `β₁ = 0.9`, `β₂ = 0.999`,
    /// `ε = 1e-8`.
    pub fn new(learning_rate: f64) -> Self {
        Self::with_betas(learning_rate, 0.9, 0.999)
    }

    /// Create an Adam optimizer with explicit momentum coefficients.
    pub fn with_betas(learning_rate: f64, beta1: f64, beta2: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        Self {
            learning_rate,
            beta1,
            beta2,
            epsilon: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Number of rows with live moment state.
    pub fn state_rows(&self) -> usize {
        self.state.len()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &GradientBuffer) -> Vec<(TableId, usize)> {
        let (lr, b1, b2, eps) = (self.learning_rate, self.beta1, self.beta2, self.epsilon);
        let mut tables = model.tables_mut();
        let mut touched = Vec::with_capacity(grads.len());
        for (&(table, row), grad) in grads.iter() {
            let state = self.state.entry((table, row)).or_insert_with(|| RowState {
                m: vec![0.0; grad.len()],
                v: vec![0.0; grad.len()],
                t: 0,
            });
            state.t += 1;
            let bias1 = 1.0 - b1.powi(state.t as i32);
            let bias2 = 1.0 - b2.powi(state.t as i32);
            let params = tables[table].row_mut(row);
            for i in 0..grad.len() {
                let g = grad[i];
                state.m[i] = b1 * state.m[i] + (1.0 - b1) * g;
                state.v[i] = b2 * state.v[i] + (1.0 - b2) * g * g;
                let m_hat = state.m[i] / bias1;
                let v_hat = state.v[i] / bias2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            touched.push((table, row));
        }
        touched
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{DistMult, KgeModel};

    fn model() -> DistMult {
        let mut rng = seeded_rng(4);
        let mut m = DistMult::new(3, 1, 2, &mut rng);
        m.tables_mut()[0].set_row(0, &[0.0, 0.0]);
        m
    }

    #[test]
    fn first_step_size_is_close_to_learning_rate() {
        let mut m = model();
        let mut grads = GradientBuffer::new();
        grads.add(0, 0, &[10.0, -0.001], 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut m, &grads);
        let row = m.tables()[0].row(0);
        // Adam's first bias-corrected step is ≈ lr regardless of magnitude,
        // in the direction opposite to the gradient.
        assert!((row[0] + 0.01).abs() < 1e-6, "row[0] = {}", row[0]);
        assert!((row[1] - 0.01).abs() < 1e-6, "row[1] = {}", row[1]);
    }

    #[test]
    fn repeated_steps_descend_a_quadratic() {
        // minimise f(x) = x² with gradient 2x starting at x = 1
        let mut m = model();
        m.tables_mut()[0].set_row(1, &[1.0, 1.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..200 {
            let x = m.tables()[0].row(1).to_vec();
            let mut grads = GradientBuffer::new();
            grads.add(0, 1, &[2.0 * x[0], 2.0 * x[1]], 1.0);
            opt.step(&mut m, &grads);
        }
        let x = m.tables()[0].row(1);
        assert!(x[0].abs() < 0.05, "x[0] = {}", x[0]);
        assert!(x[1].abs() < 0.05);
    }

    #[test]
    fn lazy_state_and_reset() {
        let mut m = model();
        let mut grads = GradientBuffer::new();
        grads.add(0, 2, &[1.0, 1.0], 1.0);
        grads.add(1, 0, &[1.0, 1.0], 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut m, &grads);
        assert_eq!(opt.state_rows(), 2);
        opt.reset();
        assert_eq!(opt.state_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "beta1 must be in [0,1)")]
    fn invalid_beta_is_rejected() {
        let _ = Adam::with_betas(0.01, 1.0, 0.999);
    }

    #[test]
    fn touched_rows_are_reported() {
        let mut m = model();
        let mut grads = GradientBuffer::new();
        grads.add(0, 0, &[1.0, 1.0], 1.0);
        grads.add(0, 1, &[1.0, 1.0], 1.0);
        let mut opt = Adam::new(0.01);
        let mut touched = opt.step(&mut m, &grads);
        touched.sort_unstable();
        assert_eq!(touched, vec![(0, 0), (0, 1)]);
    }
}
