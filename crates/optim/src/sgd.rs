//! Plain stochastic gradient descent.

use crate::optimizer::{Optimizer, OptimizerState};
use nscaching_models::{GradientArena, KgeModel};

/// `θ ← θ − η·g` with no state.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f64,
}

impl Sgd {
    /// Create an SGD optimizer with learning rate `η`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &mut GradientArena) {
        let lr = self.learning_rate;
        // Grouped per-table walk: one virtual `table_mut` dispatch per table
        // run of the sorted slot list instead of one per row.
        for (table, run) in grads.rows().by_table() {
            let table = model.table_mut(table);
            for (row, grad) in run.iter() {
                let params = table.row_mut(row);
                for (p, g) in params.iter_mut().zip(grad) {
                    *p -= lr * g;
                }
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn reset(&mut self) {}

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Sgd
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        match state {
            OptimizerState::Sgd => Ok(()),
            other => Err(format!("cannot import {:?} state into Sgd", other.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{DistMult, KgeModel};

    #[test]
    fn step_moves_parameters_against_the_gradient() {
        let mut rng = seeded_rng(1);
        let mut model = DistMult::new(3, 1, 2, &mut rng);
        model.tables_mut()[0].set_row(0, &[1.0, 1.0]);
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[0.5, -0.5], 1.0);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut model, &mut grads);
        assert_eq!(grads.touched(), &[(0, 0)]);
        let row = model.tables()[0].row(0);
        assert!((row[0] - 0.95).abs() < 1e-12);
        assert!((row[1] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn untouched_rows_stay_unchanged() {
        let mut rng = seeded_rng(2);
        let mut model = DistMult::new(3, 1, 2, &mut rng);
        let before = model.tables()[0].row(2).to_vec();
        let mut grads = GradientArena::new();
        grads.add(0, 0, &[1.0, 1.0], 1.0);
        Sgd::new(0.1).step(&mut model, &mut grads);
        assert_eq!(model.tables()[0].row(2), before.as_slice());
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_is_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn reset_is_a_noop() {
        let mut opt = Sgd::new(0.1);
        opt.reset();
        assert!((opt.learning_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn state_is_empty_and_rejects_foreign_kinds() {
        use crate::optimizer::OptimizerState;
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.export_state(), OptimizerState::Sgd);
        assert!(opt.import_state(OptimizerState::Sgd).is_ok());
        assert!(opt
            .import_state(OptimizerState::Adam { tables: Vec::new() })
            .is_err());
    }
}
