//! The optimizer trait and configuration.

use crate::adagrad::AdaGrad;
use crate::adam::Adam;
use crate::sgd::Sgd;
use nscaching_models::{GradientArena, KgeModel};
use serde::{Deserialize, Serialize};

/// A sparse first-order optimizer.
///
/// `step` applies one descent update for every touched `(table, row)` slot of
/// the arena, walking the sorted slot list (see the crate docs for the
/// determinism contract). The caller re-imposes model constraints afterwards
/// with `model.apply_constraints(grads.touched())` — the same sorted list, so
/// no separate touched-row vector is materialised.
pub trait Optimizer: Send {
    /// Apply one descent step of the given sparse gradient.
    fn step(&mut self, model: &mut dyn KgeModel, grads: &mut GradientArena);

    /// Pre-size the per-row state slabs from `model`'s table dimensions so
    /// that [`step`](Self::step) never allocates. Called once at construction
    /// by the trainer and the GAN samplers; stateless optimizers ignore it.
    fn bind(&mut self, _model: &dyn KgeModel) {}

    /// The (base) learning rate.
    fn learning_rate(&self) -> f64;

    /// Reset all accumulated state (moments, step counters).
    fn reset(&mut self);
}

/// Which optimizer to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd,
    /// AdaGrad with per-component accumulators.
    AdaGrad,
    /// Adam with default `β₁ = 0.9`, `β₂ = 0.999` (the paper's optimizer).
    Adam,
}

/// Declarative optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Which algorithm to use.
    pub kind: OptimizerKind,
    /// Learning rate η.
    pub learning_rate: f64,
}

impl OptimizerConfig {
    /// The paper's default: Adam with the given learning rate.
    pub fn adam(learning_rate: f64) -> Self {
        Self {
            kind: OptimizerKind::Adam,
            learning_rate,
        }
    }

    /// Plain SGD with the given learning rate.
    pub fn sgd(learning_rate: f64) -> Self {
        Self {
            kind: OptimizerKind::Sgd,
            learning_rate,
        }
    }

    /// AdaGrad with the given learning rate.
    pub fn adagrad(learning_rate: f64) -> Self {
        Self {
            kind: OptimizerKind::AdaGrad,
            learning_rate,
        }
    }
}

/// Build an optimizer from its configuration.
pub fn build_optimizer(config: &OptimizerConfig) -> Box<dyn Optimizer> {
    match config.kind {
        OptimizerKind::Sgd => Box::new(Sgd::new(config.learning_rate)),
        OptimizerKind::AdaGrad => Box::new(AdaGrad::new(config.learning_rate)),
        OptimizerKind::Adam => Box::new(Adam::new(config.learning_rate)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors_set_kind_and_rate() {
        assert_eq!(OptimizerConfig::adam(0.01).kind, OptimizerKind::Adam);
        assert_eq!(OptimizerConfig::sgd(0.1).learning_rate, 0.1);
        assert_eq!(OptimizerConfig::adagrad(0.05).kind, OptimizerKind::AdaGrad);
    }

    #[test]
    fn build_dispatches_on_kind() {
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::AdaGrad,
            OptimizerKind::Adam,
        ] {
            let opt = build_optimizer(&OptimizerConfig {
                kind,
                learning_rate: 0.123,
            });
            assert!((opt.learning_rate() - 0.123).abs() < 1e-12);
        }
    }
}
