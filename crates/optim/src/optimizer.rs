//! The optimizer trait and configuration.

use crate::adagrad::AdaGrad;
use crate::adam::Adam;
use crate::sgd::Sgd;
use nscaching_models::{GradientArena, KgeModel};
use serde::{Deserialize, Serialize};

/// A sparse first-order optimizer.
///
/// `step` applies one descent update for every touched `(table, row)` slot of
/// the arena, walking the sorted slot list (see the crate docs for the
/// determinism contract). The caller re-imposes model constraints afterwards
/// with `model.apply_constraints(grads.touched())` — the same sorted list, so
/// no separate touched-row vector is materialised.
pub trait Optimizer: Send {
    /// Apply one descent step of the given sparse gradient.
    fn step(&mut self, model: &mut dyn KgeModel, grads: &mut GradientArena);

    /// Pre-size the per-row state slabs from `model`'s table dimensions so
    /// that [`step`](Self::step) never allocates. Called once at construction
    /// by the trainer and the GAN samplers; stateless optimizers ignore it.
    fn bind(&mut self, _model: &dyn KgeModel) {}

    /// The (base) learning rate.
    fn learning_rate(&self) -> f64;

    /// Reset all accumulated state (moments, step counters).
    fn reset(&mut self);

    /// Copy out the per-row state slabs for checkpointing.
    ///
    /// The exported slabs are exactly the optimizer's live state: importing
    /// them into a freshly built optimizer of the same kind (then re-`bind`ing
    /// it) continues the update sequence bit-for-bit, which is half of the
    /// trainer's exact-resume guarantee (the other half is the RNG state).
    fn export_state(&self) -> OptimizerState;

    /// Replace the per-row state with slabs captured by
    /// [`export_state`](Self::export_state).
    ///
    /// Fails (with a description) when `state` belongs to a different
    /// optimizer kind. Callers should re-`bind` afterwards so slab sizes are
    /// re-padded to the model's tables.
    fn import_state(&mut self, state: OptimizerState) -> Result<(), String>;
}

/// A checkpointable copy of an optimizer's per-row state slabs.
///
/// The variants mirror the dense per-table slab layout of the concrete
/// optimizers (see the crate docs): one entry per parameter table, indexed by
/// table id, each holding `rows × dim` row-major value slabs plus the per-row
/// bookkeeping (`seen` flags, step counters). [`Optimizer::export_state`] /
/// [`Optimizer::import_state`] round-trip it; `nscaching_serve` serialises it
/// into the snapshot format.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// SGD carries no state.
    Sgd,
    /// AdaGrad: squared-gradient accumulators plus touched-row flags.
    AdaGrad {
        /// One slab per parameter table, in table-id order.
        tables: Vec<AdaGradTableState>,
    },
    /// Adam: first/second moments plus per-row step counters.
    Adam {
        /// One slab per parameter table, in table-id order.
        tables: Vec<AdamTableState>,
    },
}

impl OptimizerState {
    /// The optimizer kind this state belongs to.
    pub fn kind(&self) -> OptimizerKind {
        match self {
            OptimizerState::Sgd => OptimizerKind::Sgd,
            OptimizerState::AdaGrad { .. } => OptimizerKind::AdaGrad,
            OptimizerState::Adam { .. } => OptimizerKind::Adam,
        }
    }
}

/// One table's exported AdaGrad state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaGradTableState {
    /// Row dimension (0 for a table that was never touched).
    pub dim: usize,
    /// `rows × dim` squared-gradient sums, row-major.
    pub acc: Vec<f64>,
    /// Which rows have ever received a gradient.
    pub seen: Vec<bool>,
}

/// One table's exported Adam state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdamTableState {
    /// Row dimension (0 for a table that was never touched).
    pub dim: usize,
    /// First moments, `rows × dim` row-major.
    pub m: Vec<f64>,
    /// Second moments, `rows × dim` row-major.
    pub v: Vec<f64>,
    /// Per-row step counters (0 = never touched).
    pub t: Vec<u64>,
}

/// Which optimizer to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd,
    /// AdaGrad with per-component accumulators.
    AdaGrad,
    /// Adam with default `β₁ = 0.9`, `β₂ = 0.999` (the paper's optimizer).
    Adam,
}

/// Declarative optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Which algorithm to use.
    pub kind: OptimizerKind,
    /// Learning rate η.
    pub learning_rate: f64,
}

impl OptimizerConfig {
    /// The paper's default: Adam with the given learning rate.
    pub fn adam(learning_rate: f64) -> Self {
        Self {
            kind: OptimizerKind::Adam,
            learning_rate,
        }
    }

    /// Plain SGD with the given learning rate.
    pub fn sgd(learning_rate: f64) -> Self {
        Self {
            kind: OptimizerKind::Sgd,
            learning_rate,
        }
    }

    /// AdaGrad with the given learning rate.
    pub fn adagrad(learning_rate: f64) -> Self {
        Self {
            kind: OptimizerKind::AdaGrad,
            learning_rate,
        }
    }
}

/// Build an optimizer from its configuration.
pub fn build_optimizer(config: &OptimizerConfig) -> Box<dyn Optimizer> {
    match config.kind {
        OptimizerKind::Sgd => Box::new(Sgd::new(config.learning_rate)),
        OptimizerKind::AdaGrad => Box::new(AdaGrad::new(config.learning_rate)),
        OptimizerKind::Adam => Box::new(Adam::new(config.learning_rate)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors_set_kind_and_rate() {
        assert_eq!(OptimizerConfig::adam(0.01).kind, OptimizerKind::Adam);
        assert_eq!(OptimizerConfig::sgd(0.1).learning_rate, 0.1);
        assert_eq!(OptimizerConfig::adagrad(0.05).kind, OptimizerKind::AdaGrad);
    }

    #[test]
    fn build_dispatches_on_kind() {
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::AdaGrad,
            OptimizerKind::Adam,
        ] {
            let opt = build_optimizer(&OptimizerConfig {
                kind,
                learning_rate: 0.123,
            });
            assert!((opt.learning_rate() - 0.123).abs() < 1e-12);
        }
    }
}
