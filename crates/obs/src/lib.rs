//! The unified observability core: atomic counters and gauges, log-bucketed
//! latency histograms, and a named [`MetricsRegistry`] with a stable text
//! exposition format.
//!
//! Everything upstream of this crate *computes*; this crate makes the stack
//! *operable*. The training loop's per-phase timers, the serving engine's
//! cache and checkpoint telemetry and the TCP front door's per-opcode latency
//! distributions all register here, and the whole registry is readable from a
//! live server through the `STATS` wire opcode (see `nscaching_net`).
//!
//! # Design contract
//!
//! * **Zero dependencies** — `std` only, so the crate can sit underneath
//!   every other layer of the workspace without a cycle.
//! * **Alloc-free on the hot path** — recording into a [`Counter`],
//!   [`Gauge`] or [`LatencyHistogram`] is a handful of relaxed atomic
//!   operations and never allocates. All allocation happens at registration
//!   time (building the bucket table, interning the name) or at scrape time
//!   (rendering the exposition text). The `obs_overhead` bench in
//!   `nscaching-bench` gates the end-to-end cost (`NSC_OBS_OVERHEAD_MAX`,
//!   ≤ 2 % on the pooled trainer's batch cycle and the serve hit path) and
//!   asserts the instrumented hot paths stay allocation-free.
//! * **Lock-free recording** — histograms are fixed tables of atomic bucket
//!   counters; `record()` is one index computation plus relaxed
//!   `fetch_add`s. The registry's mutex is touched only at registration and
//!   scrape time, never per sample.
//!
//! # Metric naming convention
//!
//! `nsc_<layer>_<subject>[_<unit>][_total]`, with dimensions as labels:
//!
//! * `<layer>` is the workspace crate: `net`, `serve`, `train`;
//! * `<unit>` is spelled out where it matters: `_us` (microseconds),
//!   `_ms` (milliseconds), `_seconds`;
//! * monotone counters end in `_total`; gauges and histogram bases do not;
//! * labels pick the dimension, e.g. `nsc_net_request_latency_us{op="top_k"}`
//!   or `nsc_train_phase_us{phase="sample"}`.
//!
//! # Exposition format
//!
//! [`MetricsRegistry::render`] emits one line per value, sorted by
//! `(name, labels)` so the output is stable across runs and platforms
//! (golden-pinned by `tests/exposition_golden.rs`, the same deployment
//! contract as the wire protocol's golden-bytes tests):
//!
//! ```text
//! name{label="v"} value            # counter (u64) or gauge (f64)
//! name{label="v",q="p50"} value    # histogram quantiles: p50 / p90 / p99 / max
//! name_count{label="v"} value      # histogram: total samples
//! name_sum{label="v"} value        # histogram: sum of recorded values
//! ```
//!
//! # Histogram bucket layout
//!
//! [`LatencyHistogram`] uses an HDR-style log-linear table: values below 64
//! land in exact unit-width buckets; above that, each power-of-two range
//! `[2^e, 2^(e+1))` is split into 64 linear sub-buckets, so the relative
//! quantization error is bounded by 1/64 ≈ 1.6 % — about two significant
//! figures — at every scale. The table is fixed at 1 664 buckets covering
//! `[0, 2^31)` (≈ 35 minutes when recording microseconds); larger values
//! clamp into the last bucket while the exact maximum is tracked separately.
//! Quantiles are read out by exact-count rank walks over the bucket table,
//! never by interpolation between sampled percentiles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod metric;
pub mod registry;

pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use metric::{Counter, Gauge};
pub use registry::MetricsRegistry;
