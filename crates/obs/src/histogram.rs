//! The log-bucketed [`LatencyHistogram`]: a fixed table of atomic bucket
//! counters with ~2-significant-figure resolution at every scale.
//!
//! # Bucket table
//!
//! HDR-style log-linear layout over unsigned integer values (by convention,
//! microseconds):
//!
//! * values `0..64` land in 64 exact unit-width buckets;
//! * each power-of-two range `[2^e, 2^(e+1))` for `e` in `6..=30` is split
//!   into 64 linear sub-buckets of width `2^(e-6)`;
//! * values at or above `2^31` clamp into the last bucket (the exact maximum
//!   is tracked separately, so `max` never lies).
//!
//! Total: `64 + 25 × 64 = 1 664` buckets, ~13 KiB of atomics per histogram.
//! The relative quantization error is at most one sub-bucket width, i.e.
//! `1/64 ≈ 1.6 %` of the value — "about two significant figures".
//!
//! # Concurrency
//!
//! [`record`](LatencyHistogram::record) is one branch-free index computation
//! plus three relaxed `fetch_add`s and one `fetch_max`; it never allocates,
//! locks, or spins (quantile reads walk the table without stopping writers,
//! so a snapshot taken under concurrent recording is approximate to the
//! in-flight samples only — each sample is atomically either in or out).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two range, as a bit count (64 buckets).
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per power-of-two range.
const SUB: u64 = 1 << SUB_BITS;
/// Largest bucketed exponent; values at or above `2^(MAX_EXP + 1)` clamp.
const MAX_EXP: u32 = 30;
/// Total bucket count.
pub(crate) const NUM_BUCKETS: usize = (SUB + (MAX_EXP - SUB_BITS + 1) as u64 * SUB) as usize;

/// Index of the bucket holding `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        if exp > MAX_EXP {
            NUM_BUCKETS - 1
        } else {
            let sub = (value >> (exp - SUB_BITS)) & (SUB - 1);
            (SUB + (exp - SUB_BITS) as u64 * SUB + sub) as usize
        }
    }
}

/// Smallest value mapping into bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    if index < SUB as usize {
        index as u64
    } else {
        let group = (index - SUB as usize) as u64 / SUB;
        let sub = (index - SUB as usize) as u64 % SUB;
        (SUB + sub) << group
    }
}

/// Width of bucket `index` (1 for the exact range, `2^group` above it).
pub(crate) fn bucket_width(index: usize) -> u64 {
    if index < SUB as usize {
        1
    } else {
        1 << ((index - SUB as usize) as u64 / SUB)
    }
}

/// Width of the bucket that `value` falls into — the quantization error
/// bound for any readout at that scale.
pub fn quantization_error(value: u64) -> u64 {
    bucket_width(bucket_index(value))
}

/// A lock-free latency histogram over unsigned integer samples (by
/// convention, microseconds — see the crate docs' naming convention).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snapshot.count)
            .field("p50", &snapshot.p50)
            .field("p99", &snapshot.p99)
            .field("max", &snapshot.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram (allocates its fixed bucket table once).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free, alloc-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds (the workspace convention for
    /// latency metrics).
    #[inline]
    pub fn observe(&self, elapsed: Duration) {
        self.record(elapsed.as_micros() as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact-count quantile readout: the upper bound of the bucket holding
    /// the rank-`⌈q·count⌉` sample, clamped to the exact recorded maximum.
    /// `q` outside `[0, 1]` is clamped. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // The clamp bucket's nominal bound understates values at or
                // above 2^31; its honest upper bound is the exact max.
                if index == NUM_BUCKETS - 1 {
                    return self.max.load(Ordering::Relaxed);
                }
                let upper = bucket_lower(index) + bucket_width(index) - 1;
                return upper.min(self.max.load(Ordering::Relaxed));
            }
        }
        // Racing writers can leave the bucket walk one short of `count`;
        // everything at or past the walk is bounded by the recorded max.
        self.max.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time readout of the headline stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Headline stats read out of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (wrapping beyond `u64::MAX`).
    pub sum: u64,
    /// Exact largest recorded value.
    pub max: u64,
    /// Median (bucket-quantized, error ≤ 1/64 of the value).
    pub p50: u64,
    /// 90th percentile (bucket-quantized).
    pub p90: u64,
    /// 99th percentile (bucket-quantized).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_table_is_consistent() {
        // Every bucket's lower bound maps back into the same bucket and the
        // buckets tile the value range without gaps.
        for index in 0..NUM_BUCKETS {
            let lower = bucket_lower(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            let upper = lower + bucket_width(index) - 1;
            assert_eq!(bucket_index(upper), index, "upper bound of {index}");
            if index + 1 < NUM_BUCKETS {
                assert_eq!(bucket_index(upper + 1), index + 1, "tiling after {index}");
            }
        }
        // Exact range, clamp range.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 63] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.snapshot().sum, 69);
    }

    #[test]
    fn quantiles_track_an_exact_reference_within_bucket_width() {
        let h = LatencyHistogram::new();
        let mut values: Vec<u64> = (0..1000).map(|i| (i * i) % 90_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            let got = h.quantile(q);
            let width = quantization_error(exact);
            assert!(
                got.abs_diff(exact) <= width,
                "q={q}: got {got}, exact {exact}, width {width}"
            );
        }
    }

    #[test]
    fn max_is_exact_even_when_clamped() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX / 3);
        assert_eq!(h.snapshot().max, u64::MAX / 3);
        assert_eq!(h.quantile(1.0), u64::MAX / 3);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p99, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 100));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let bucketed: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(bucketed, 40_000);
    }
}
