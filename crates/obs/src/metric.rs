//! Scalar metrics: monotone [`Counter`]s and floating-point [`Gauge`]s.
//!
//! Both are single atomics; recording is a relaxed atomic operation and
//! never allocates or blocks. Handles are shared as `Arc`s by the
//! [`MetricsRegistry`](crate::MetricsRegistry), so an instrumented hot loop
//! holds its counters directly and never touches the registry again.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter. Convention: names end in `_total`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. For **bridging** an external cumulative counter
    /// (e.g. the serve layer's `CacheStats`) onto the registry at scrape
    /// time — instrumented hot paths should only ever [`inc`](Self::inc) /
    /// [`add`](Self::add).
    #[inline]
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

/// A floating-point gauge (a value that goes up *and* down: queue depths,
/// ratios, the current epoch's loss). Stored as `f64` bits in one atomic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (compare-and-swap loop; gauges are scrape-path objects,
    /// contention is not a design point).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts_and_bridges() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.store(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_sets_and_accumulates() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(-1.25);
        assert_eq!(g.get(), 1.25);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
