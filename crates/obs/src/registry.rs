//! The named [`MetricsRegistry`] and its text exposition format.
//!
//! Registration hands back `Arc` handles; hot paths hold the handles and
//! never touch the registry again. [`MetricsRegistry::render`] produces the
//! stable Prometheus-style text described in the crate docs — one line per
//! value, sorted by `(name, labels)`, golden-pinned by
//! `tests/exposition_golden.rs`.

use crate::histogram::LatencyHistogram;
use crate::metric::{Counter, Gauge};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The three metric kinds a registry entry can hold.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: a name, its label pairs, and the shared handle.
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A named collection of metrics with a stable text exposition.
///
/// Cheap to share (`Arc<MetricsRegistry>`); the internal mutex is taken only
/// at registration and render time, never on a recording hot path.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().expect("metrics registry");
        f.debug_struct("MetricsRegistry")
            .field("metrics", &entries.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch) the counter `name` with no labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Register (or fetch) the counter `name` with `labels`. Re-registering
    /// the same `(name, labels)` returns the existing handle; re-registering
    /// it as a different metric kind panics (a programming error).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) the gauge `name` with no labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Register (or fetch) the gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) the histogram `name` with no labels.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        self.histogram_with(name, &[])
    }

    /// Register (or fetch) the histogram `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        match self.register(name, labels, || {
            Metric::Histogram(Arc::new(LatencyHistogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        build: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock().expect("metrics registry");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
        {
            return entry.metric.clone();
        }
        let metric = build();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// Current value of the counter `(name, labels)`, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let entries = self.entries.lock().expect("metrics registry");
        entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
            .and_then(|e| match &e.metric {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
    }

    /// Current value of the gauge `(name, labels)`, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let entries = self.entries.lock().expect("metrics registry");
        entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
            .and_then(|e| match &e.metric {
                Metric::Gauge(g) => Some(g.get()),
                _ => None,
            })
    }

    /// Render the exposition text: one line per value, sorted by
    /// `(name, labels)`, trailing newline. See the crate docs for the exact
    /// format; it is pinned by the golden test and must not drift.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry");
        let mut lines: Vec<String> = Vec::new();
        for entry in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => {
                    lines.push(line(&entry.name, &entry.labels, None, &c.get().to_string()));
                }
                Metric::Gauge(g) => {
                    lines.push(line(&entry.name, &entry.labels, None, &format_f64(g.get())));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    for (q, v) in [
                        ("p50", s.p50),
                        ("p90", s.p90),
                        ("p99", s.p99),
                        ("max", s.max),
                    ] {
                        lines.push(line(&entry.name, &entry.labels, Some(q), &v.to_string()));
                    }
                    let count_name = format!("{}_count", entry.name);
                    lines.push(line(&count_name, &entry.labels, None, &s.count.to_string()));
                    let sum_name = format!("{}_sum", entry.name);
                    lines.push(line(&sum_name, &entry.labels, None, &s.sum.to_string()));
                }
            }
        }
        lines.sort_unstable();
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// `name{k="v",...} value` (no braces when there are no labels). The `q`
/// quantile label, when present, always renders last.
fn line(name: &str, labels: &[(String, String)], q: Option<&str>, value: &str) -> String {
    let mut out = String::with_capacity(name.len() + 16 + value.len());
    out.push_str(name);
    if !labels.is_empty() || q.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape(v));
        }
        if let Some(q) = q {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "q=\"{q}\"");
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out
}

/// Escape `\` and `"` in label values (the exposition format's only two
/// metacharacters; metric and label names are caller-controlled identifiers).
fn escape(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Gauges print like Rust's `f64` `Display` (shortest round-trip form), so
/// `2.0` renders as `2` and `0.5` as `0.5` — stable across platforms.
fn format_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("nsc_test_total", &[("op", "x")]);
        let b = registry.counter_with("nsc_test_total", &[("op", "x")]);
        let c = registry.counter_with("nsc_test_total", &[("op", "y")]);
        a.inc();
        assert_eq!(b.get(), 1, "same (name, labels) shares the handle");
        assert_eq!(c.get(), 0, "different labels are a different series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("nsc_test_total");
        registry.gauge("nsc_test_total");
    }

    #[test]
    fn values_are_readable_back() {
        let registry = MetricsRegistry::new();
        registry.counter_with("c", &[("a", "1")]).add(5);
        registry.gauge("g").set(0.5);
        assert_eq!(registry.counter_value("c", &[("a", "1")]), Some(5));
        assert_eq!(registry.counter_value("c", &[]), None);
        assert_eq!(registry.gauge_value("g", &[]), Some(0.5));
        assert_eq!(registry.gauge_value("missing", &[]), None);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let registry = MetricsRegistry::new();
        registry.counter("zz_total").inc();
        registry.counter("aa_total").add(2);
        let text = registry.render();
        assert_eq!(text, "aa_total 2\nzz_total 1\n");
        assert_eq!(registry.render(), text, "render is deterministic");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("c_total", &[("path", "a\"b\\c")])
            .inc();
        assert_eq!(registry.render(), "c_total{path=\"a\\\"b\\\\c\"} 1\n");
    }
}
