//! Golden-pinned exposition format.
//!
//! The `STATS` wire opcode ships `MetricsRegistry::render` output to remote
//! clients, so the text format is a deployment contract exactly like the wire
//! protocol's encoded bytes: dashboards and scrapers parse these lines. This
//! test pins the rendering of every metric kind byte-for-byte. If it fails,
//! the format changed — that is a breaking protocol change, not a refactor.

use nscaching_obs::MetricsRegistry;

/// One registry exercising every rendering rule: unlabelled counter,
/// labelled counter, gauge (integral and fractional), empty and populated
/// histograms, label escaping, and (name, labels) sort order.
fn golden_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();

    registry.counter("nsc_demo_requests_total").add(1203);
    registry
        .counter_with("nsc_demo_errors_total", &[("op", "top_k")])
        .add(3);
    registry
        .counter_with("nsc_demo_errors_total", &[("op", "score")])
        .inc();

    registry.gauge("nsc_demo_in_flight").set(7.0);
    registry
        .gauge_with("nsc_demo_ratio", &[("phase", "drain")])
        .set(0.625);

    let hist = registry.histogram_with("nsc_demo_latency_us", &[("op", "ping")]);
    // 1..=100 µs and one outlier at 1500 µs. Values below 128 sit in
    // unit-width buckets (exact); 1500 lands in the width-16 bucket
    // [1488, 1504) whose upper bound 1503 is what quantile readout reports.
    for v in 1..=100u64 {
        hist.record(v);
    }
    hist.record(1500);
    registry.histogram("nsc_demo_idle_us"); // registered but never recorded

    registry
        .counter_with("nsc_demo_reload_total", &[("path", "a\"b\\c")])
        .inc();

    registry
}

/// The pinned exposition text. Notes on the lines:
///  * sorted byte-wise by the full line, so `_count`/`_sum` (0x5F) sort
///    before the `{`-labelled (0x7B) quantile lines of the same histogram;
///  * with 101 samples, p50 is rank 51 → 51 exactly; p90 is rank 91 → 91;
///    p99 is rank 100 → 100; max is the exact outlier 1500;
///  * empty histograms read zero everywhere;
///  * gauges print in Rust `f64` shortest form (`7`, `0.625`);
///  * `"` and `\` in label values are escaped.
const GOLDEN: &str = "\
nsc_demo_errors_total{op=\"score\"} 1
nsc_demo_errors_total{op=\"top_k\"} 3
nsc_demo_idle_us_count 0
nsc_demo_idle_us_sum 0
nsc_demo_idle_us{q=\"max\"} 0
nsc_demo_idle_us{q=\"p50\"} 0
nsc_demo_idle_us{q=\"p90\"} 0
nsc_demo_idle_us{q=\"p99\"} 0
nsc_demo_in_flight 7
nsc_demo_latency_us_count{op=\"ping\"} 101
nsc_demo_latency_us_sum{op=\"ping\"} 6550
nsc_demo_latency_us{op=\"ping\",q=\"max\"} 1500
nsc_demo_latency_us{op=\"ping\",q=\"p50\"} 51
nsc_demo_latency_us{op=\"ping\",q=\"p90\"} 91
nsc_demo_latency_us{op=\"ping\",q=\"p99\"} 100
nsc_demo_ratio{phase=\"drain\"} 0.625
nsc_demo_reload_total{path=\"a\\\"b\\\\c\"} 1
nsc_demo_requests_total 1203
";

#[test]
fn exposition_text_is_pinned() {
    assert_eq!(
        golden_registry().render(),
        GOLDEN,
        "exposition format drifted — this is a STATS protocol break, \
         update dashboards/scrapers before repinning"
    );
}

#[test]
fn render_is_idempotent_and_ends_with_newline() {
    let registry = golden_registry();
    let first = registry.render();
    assert_eq!(registry.render(), first);
    assert!(first.ends_with('\n'));
    assert!(!first.contains("\n\n"), "no blank lines in exposition");
}
