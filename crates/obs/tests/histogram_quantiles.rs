//! Property test: histogram quantile readouts vs an exact sorted-sample
//! reference.
//!
//! For arbitrary sample sets, `LatencyHistogram::quantile(q)` must stay
//! within one bucket width of the exact rank statistic — the "~2 significant
//! figures" contract the bucket table is sized for. `quantization_error`
//! exposes the bucket width at a value, so the bound is checked with the
//! crate's own resolution arithmetic rather than a hard-coded tolerance.

use nscaching_obs::histogram::quantization_error;
use nscaching_obs::LatencyHistogram;
use proptest::prelude::*;

/// Exact rank statistic matching the histogram's readout convention:
/// the `max(1, ⌈q·n⌉)`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_stay_within_one_bucket_width(
        values in prop::collection::vec(0u64..2_000_000, 1..400),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = hist.quantile(q);
            let width = quantization_error(exact);
            prop_assert!(
                got.abs_diff(exact) <= width,
                "q={}: histogram read {}, exact {}, bucket width {}",
                q, got, exact, width
            );
        }
    }

    #[test]
    fn count_sum_max_are_exact(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snapshot = hist.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);
        prop_assert_eq!(snapshot.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max, *values.iter().max().unwrap());
    }

    #[test]
    fn quantile_is_monotone_in_q(
        values in prop::collection::vec(0u64..10_000_000, 1..300),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        let reads: Vec<u64> = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| hist.quantile(q))
            .collect();
        for pair in reads.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantile not monotone: {:?}", reads);
        }
    }
}
