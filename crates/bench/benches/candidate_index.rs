//! Criterion bench: the per-relation candidate index on the top-k miss path
//! — scoring only a relation's observed candidate set against the
//! full-vocabulary streaming scan it replaces.
//!
//! Run with `cargo bench -p nscaching-bench --bench candidate_index`.
//!
//! A cold top-k query without an index pays one fused scoring pass over all
//! |E| entities. Real knowledge graphs are typed: most relations are only
//! ever observed with a small slice of the vocabulary, and a bound
//! [`CandidateIndex`] shrinks the miss-path scan to that slice. This bench
//! builds the serving design point — |E| = 20 000, k = 10, as in
//! `topk_select` — over a **skewed relation profile** (candidate-set sizes
//! falling harmonically from |E|/2 down to a few hundred, the shape typed
//! schemas actually produce) and measures the same `top_k_into` miss path
//! with and without the index bound.
//!
//! Records into the `candidate_index` section of `BENCH_serve.json`:
//!
//! * the gated headline (`NSC_INDEX_MISS_MIN`, ≥ 2× locally; CI relaxes it
//!   on shared runners like the other bench gates);
//! * the index's mean coverage and memory proxy, so the speedup can be read
//!   against the scan shrinkage that bought it.
//!
//! Every run first re-proves **bit-identity** on its own inputs: for a
//! verification slice of queries, the indexed answer must equal the
//! full-|E| ranking filtered to the candidate set — same entities, same
//! order, bit-equal scores. (Binding an index changes the *answer set* by
//! design — see `crates/serve/src/candidates.rs` — but the ranking within
//! the candidate set must match the full-scan oracle exactly.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_serve::{CandidateIndex, KnowledgeServer, QueryScratch, RankedEntity, TopKQuery};
use std::hint::black_box;
use std::time::Instant;

/// The serving design point, shared with `topk_select`.
const NUM_ENTITIES: usize = 20_000;
const NUM_RELATIONS: usize = 64;
const K: u32 = 10;
/// Timed query mix (round-robin over relations and directions).
const NUM_QUERIES: usize = 256;
/// Queries re-proved bit-identical against the full-scan oracle.
const NUM_VERIFIED: usize = 16;

/// Skewed per-relation candidate-set size: |E|/2 for relation 0 falling
/// harmonically to ~300 for relation 63 — mean coverage ≈ 6% of the
/// vocabulary, the shrinkage a typed schema buys.
fn profile_size(relation: usize) -> usize {
    (NUM_ENTITIES / (relation + 2)).max(16)
}

/// Observed triples realising the skewed profile. The multipliers are
/// primes coprime to |E|, so each relation's `profile_size` tails (and
/// heads) are distinct entities scattered over the vocabulary.
fn observed_triples() -> Vec<Triple> {
    let mut triples = Vec::new();
    for r in 0..NUM_RELATIONS {
        for j in 0..profile_size(r) {
            let head = ((j * 104_729 + 3 * r) % NUM_ENTITIES) as u32;
            let tail = ((j * 7_919 + 13 * r) % NUM_ENTITIES) as u32;
            triples.push(Triple::new(head, r as u32, tail));
        }
    }
    triples
}

fn server() -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(64)
            .with_seed(5),
        NUM_ENTITIES,
        NUM_RELATIONS,
    );
    KnowledgeServer::new(model, 8)
}

fn query(i: usize, k: u32) -> TopKQuery {
    TopKQuery {
        relation: (i % NUM_RELATIONS) as u32,
        entity: ((i * 97) % NUM_ENTITIES) as u32,
        direction: if i.is_multiple_of(2) {
            CorruptionSide::Tail
        } else {
            CorruptionSide::Head
        },
        k,
    }
}

/// Best-of-N seconds for one pass over the timed query mix on the
/// cache-free miss path.
fn mix_seconds(server: &KnowledgeServer, samples: usize) -> f64 {
    let mut scratch = QueryScratch::default();
    let mut out = Vec::new();
    let mut pass = || {
        for i in 0..NUM_QUERIES {
            server
                .top_k_into(&query(i, K), &mut scratch, &mut out)
                .expect("bench queries are in range");
            black_box(out.len());
        }
    };
    pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The full-scan oracle: rank the whole vocabulary, keep the candidates.
/// Filtering a globally tie-broken ranking preserves the lower-entity-id
/// tie break within the candidate set, so this must match the indexed
/// answer bit for bit.
fn filtered_oracle(full: &[RankedEntity], candidates: &[u32], k: usize) -> Vec<RankedEntity> {
    full.iter()
        .filter(|r| candidates.binary_search(&r.entity).is_ok())
        .take(k)
        .cloned()
        .collect()
}

fn assert_bit_identical(
    index: &CandidateIndex,
    plain: &KnowledgeServer,
    indexed: &KnowledgeServer,
) {
    let mut scratch = QueryScratch::default();
    let mut full = Vec::new();
    let mut got = Vec::new();
    for i in 0..NUM_VERIFIED {
        let q = query(i * 7 + 1, K);
        let candidates = index.candidates(q.relation, q.direction);
        plain
            .top_k_into(
                &TopKQuery {
                    k: NUM_ENTITIES as u32,
                    ..q
                },
                &mut scratch,
                &mut full,
            )
            .expect("oracle query in range");
        indexed
            .top_k_into(&q, &mut scratch, &mut got)
            .expect("indexed query in range");
        let want = filtered_oracle(&full, candidates, K as usize);
        assert_eq!(
            got.len(),
            want.len(),
            "indexed answer length diverged from the filtered oracle on {q:?}"
        );
        for (g, w) in got.iter().zip(&want) {
            assert!(
                g.entity == w.entity && g.score.to_bits() == w.score.to_bits(),
                "indexed miss path must be bit-identical to the full-scan oracle \
                 restricted to the candidate set: {q:?} gave ({}, {}), oracle ({}, {})",
                g.entity,
                g.score,
                w.entity,
                w.score,
            );
        }
    }
}

fn bench_miss_path(c: &mut Criterion) {
    let plain = server();
    let indexed = server();
    indexed.bind_candidate_index(CandidateIndex::build(&observed_triples(), NUM_RELATIONS));
    let mut group = c.benchmark_group("candidate_index");
    group.sample_size(10);
    for (label, srv) in [("full_scan", &plain), ("indexed", &indexed)] {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut i = 0usize;
            b.iter(|| {
                srv.top_k_into(&query(i, K), &mut scratch, &mut out)
                    .expect("bench queries are in range");
                i += 1;
                black_box(out.len());
            })
        });
    }
    group.finish();
}

/// Acceptance gate: the indexed miss path ≥ `NSC_INDEX_MISS_MIN`× the
/// full-|E| scan at |E| = 20 000, k = 10, bit-identical to the full-scan
/// oracle. Records `BENCH_serve.json`.
fn assert_candidate_index(_c: &mut Criterion) {
    let index = CandidateIndex::build(&observed_triples(), NUM_RELATIONS);
    let coverage = index.mean_coverage(NUM_ENTITIES);
    let entries = index.total_entries();

    let plain = server();
    let indexed = server();
    indexed.bind_candidate_index(index.clone());
    assert_bit_identical(&index, &plain, &indexed);

    let samples = 5;
    let secs_full = mix_seconds(&plain, samples);
    let secs_indexed = mix_seconds(&indexed, samples);
    let speedup = secs_full / secs_indexed;

    let min_speedup: f64 = std::env::var("NSC_INDEX_MISS_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    println!(
        "candidate_index TransE d=64 |E|={NUM_ENTITIES} k={K} ({NUM_RELATIONS} relations, \
         mean coverage {:.1}%, {entries} entries): full scan {:.2} ms/mix, \
         indexed {:.2} ms/mix — {speedup:.2}x (min {min_speedup}x), bit-identical",
        coverage * 100.0,
        secs_full * 1e3,
        secs_indexed * 1e3,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransE\",\n    \"dim\": 64,\n    \"num_entities\": {NUM_ENTITIES},\n    \"num_relations\": {NUM_RELATIONS},\n    \"k\": {K},\n    \"queries_per_mix\": {NUM_QUERIES},\n    \"profile\": \"harmonic: |candidates(r)| = max(|E|/(r+2), 16)\"\n  }},\n  \"index\": {{\n    \"mean_coverage\": {coverage:.4},\n    \"total_entries\": {entries}\n  }},\n  \"mix_seconds\": {{\n    \"full_scan\": {secs_full:.6},\n    \"indexed\": {secs_indexed:.6}\n  }},\n  \"indexed_over_full_scan_speedup\": {speedup:.2},\n  \"min_required_speedup\": {min_speedup},\n  \"bit_identical_to_filtered_oracle\": true,\n  \"note\": \"cache-miss path with a bound per-relation CandidateIndex vs the full-|E| streaming scan, at the same |E|=20k k=10 design point as topk_miss_path, over a skewed (harmonic) candidate-set profile. Indexed answers are asserted bit-identical to the full-vocabulary ranking filtered to the candidate set before anything is timed — binding an index changes the answer SET by design (see crates/serve/src/candidates.rs), never the ranking within it. Gate NSC_INDEX_MISS_MIN (relaxed in CI)\"\n}}"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "serve", "candidate_index", &section)
    {
        eprintln!("could not record BENCH_serve.json at {path:?}: {e}");
    }

    assert!(
        speedup >= min_speedup,
        "indexed top-k miss path must be ≥{min_speedup}x the full-|E| scan at \
         |E|={NUM_ENTITIES} k={K} (got {speedup:.2}x; override with NSC_INDEX_MISS_MIN)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_candidate_index, bench_miss_path
}
criterion_main!(benches);
