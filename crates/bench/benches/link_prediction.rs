//! Criterion bench: filtered link-prediction evaluation throughput
//! (single-threaded vs multi-threaded ranking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching_datagen::GeneratorConfig;
use nscaching_eval::{evaluate_link_prediction, EvalProtocol};
use nscaching_kg::Dataset;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use std::hint::black_box;

fn dataset() -> Dataset {
    let mut config = GeneratorConfig::small("bench-eval");
    config.num_entities = 800;
    config.num_train = 4_000;
    config.num_valid = 100;
    config.num_test = 100;
    config.seed = 2;
    nscaching_datagen::generate(&config).expect("generation succeeds")
}

fn model(dataset: &Dataset, kind: ModelKind) -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(kind).with_dim(32).with_seed(4),
        dataset.num_entities(),
        dataset.num_relations(),
    )
}

fn bench_ranking(c: &mut Criterion) {
    let dataset = dataset();
    let filter = dataset.filter_index();
    let mut group = c.benchmark_group("link_prediction");
    group.sample_size(10);
    for kind in [ModelKind::TransE, ModelKind::ComplEx] {
        let model = model(&dataset, kind);
        for threads in [1usize, 4] {
            let protocol = EvalProtocol::filtered()
                .with_threads(threads)
                .with_max_triples(50);
            group.bench_function(
                BenchmarkId::from_parameter(format!("{}_{}threads", kind.name(), threads)),
                |b| {
                    b.iter(|| {
                        black_box(evaluate_link_prediction(
                            model.as_ref(),
                            &dataset.test,
                            &filter,
                            &protocol,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
