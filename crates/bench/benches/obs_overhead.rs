//! Criterion bench: the observability layer's hot-path cost.
//!
//! Run with `cargo bench -p nscaching-bench --bench obs_overhead`.
//!
//! The `nscaching_obs` contract is that instrumentation is free enough to
//! leave on everywhere: counters and histogram records are single relaxed
//! atomic RMWs, timers read the clock at most twice per *phase per batch*
//! (train) or once per *miss* (serve), and the serve cache-hit path takes no
//! clock reads at all. This bench measures and gates exactly that:
//!
//! * **serve hit path** — a warmed LRU answering the same hot set with and
//!   without a [`ServeMetrics`] handle attached; the instrumented/plain time
//!   ratio must stay within `NSC_OBS_OVERHEAD_MAX` (default 2% locally; CI
//!   relaxes to 5% on shared runners);
//! * **pooled trainer** — best-of epoch wall time of the 2-shard pool engine
//!   with and without a [`TrainMetrics`] handle attached, same gate;
//! * **alloc-free hot path** — hard-asserted at any gate level: steady-state
//!   histogram records, counter increments and instrumented serve cache hits
//!   perform **zero** heap allocations.
//!
//! Records the `obs_overhead` section of `BENCH_obs.json` at the workspace
//! root.

use criterion::{criterion_group, criterion_main, Criterion};
use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_obs::MetricsRegistry;
use nscaching_optim::OptimizerConfig;
use nscaching_serve::{KnowledgeServer, QueryScratch, ServeMetrics, TopKQuery};
use nscaching_train::{TrainConfig, TrainMetrics, TrainRuntime, Trainer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct CountingAllocator;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const DIM: usize = 64;
const ENTITIES: usize = 2_000;
const RELATIONS: usize = 32;
const CACHE_CAPACITY: usize = 256;
/// Hot-set cache hits per serve measurement pass.
const HIT_PASS: usize = 100_000;
/// Training epochs measured per trainer (the best one scores).
const EPOCHS: usize = 6;
const TRAIN_SHARDS: usize = 2;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
    f();
    ALLOCATION_COUNT.load(Ordering::Relaxed) - before
}

fn server() -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(DIM)
            .with_seed(3),
        ENTITIES,
        RELATIONS,
    );
    KnowledgeServer::new(model, CACHE_CAPACITY)
}

/// A hot set that fits the LRU, so every measured lookup is a pure hit.
fn hot_queries() -> Vec<TopKQuery> {
    (0..CACHE_CAPACITY / 2)
        .map(|i| {
            let entity = ((i * 131) % ENTITIES) as u32;
            let relation = ((i * 17) % RELATIONS) as u32;
            TopKQuery::tails(entity, relation, 10)
        })
        .collect()
}

/// Best-of-`samples` seconds for one measurement pass.
fn best_seconds(samples: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Best-of pass time over `HIT_PASS` warm cache hits.
fn hit_pass_seconds(server: &KnowledgeServer, hot: &[TopKQuery]) -> f64 {
    let mut scratch = QueryScratch::default();
    // Warm every hot key so the measured passes never miss.
    for query in hot {
        black_box(server.top_k(query, &mut scratch).unwrap());
    }
    best_seconds(7, || {
        for i in 0..HIT_PASS {
            let query = &hot[i % hot.len()];
            black_box(server.top_k(query, &mut scratch).unwrap());
        }
    })
}

fn trainer(instrumented: bool) -> (Trainer, Option<Arc<MetricsRegistry>>) {
    let mut config = GeneratorConfig::small("obs-overhead");
    config.num_entities = 1_500;
    config.num_train = 12_000;
    config.num_valid = 50;
    config.num_test = 50;
    config.seed = 29;
    let dataset = nscaching_datagen::generate(&config).unwrap();
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(32)
            .with_seed(7),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(30, 30)),
        &dataset,
        11,
    );
    let train_config = TrainConfig::new(EPOCHS)
        .with_batch_size(512)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(2.0)
        .with_seed(5)
        .with_shards(TRAIN_SHARDS)
        .with_runtime(TrainRuntime::Pool);
    let mut trainer = Trainer::new(model, sampler, &dataset, train_config);
    if instrumented {
        let registry = Arc::new(MetricsRegistry::new());
        trainer.attach_metrics(TrainMetrics::register(&registry));
        (trainer, Some(registry))
    } else {
        (trainer, None)
    }
}

/// Best epoch wall time over the trainer's full budget.
fn best_epoch_seconds(trainer: &mut Trainer) -> f64 {
    (0..EPOCHS)
        .map(|_| trainer.train_epoch().seconds)
        .fold(f64::INFINITY, f64::min)
}

fn assert_obs_overhead(_c: &mut Criterion) {
    let max_overhead: f64 = std::env::var("NSC_OBS_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    // --- Alloc-free metric primitives: steady-state records never touch
    //     the heap (the bucket table is fixed at construction).
    let registry = MetricsRegistry::new();
    let histogram = registry.histogram("bench_probe_us");
    let counter = registry.counter("bench_probe_total");
    histogram.record(1); // construction + first-touch out of the way
    counter.inc();
    let primitive_allocations = allocations(|| {
        for i in 0..100_000u64 {
            histogram.record(i % 4_096);
            counter.inc();
        }
    });

    // --- Serve hit path: plain vs instrumented, plus the alloc assert.
    let hot = hot_queries();
    let secs_plain_serve = hit_pass_seconds(&server(), &hot);
    let instrumented = server();
    let serve_registry = MetricsRegistry::new();
    instrumented.attach_metrics(ServeMetrics::register(&serve_registry));
    let secs_obs_serve = hit_pass_seconds(&instrumented, &hot);
    let serve_hit_allocations = {
        let mut scratch = QueryScratch::default();
        allocations(|| {
            for i in 0..HIT_PASS {
                let query = &hot[i % hot.len()];
                black_box(instrumented.top_k(query, &mut scratch).unwrap());
            }
        })
    };
    let serve_overhead = (secs_obs_serve / secs_plain_serve - 1.0).max(0.0);

    // --- Pooled trainer: plain vs instrumented best epoch.
    let secs_plain_train = best_epoch_seconds(&mut trainer(false).0);
    let (mut obs_trainer, train_registry) = trainer(true);
    let secs_obs_train = best_epoch_seconds(&mut obs_trainer);
    let train_overhead = (secs_obs_train / secs_plain_train - 1.0).max(0.0);
    // The instrumented run actually landed on its registry.
    let train_registry = train_registry.unwrap();
    assert_eq!(
        train_registry.counter_value("nsc_train_epochs_total", &[]),
        Some(EPOCHS as u64)
    );

    println!(
        "obs_overhead serve hit path {:.1}M q/s plain vs {:.1}M q/s instrumented \
         ({serve_overhead:.4} overhead), pool({TRAIN_SHARDS}) epoch {:.3}s plain vs \
         {:.3}s instrumented ({train_overhead:.4} overhead), max {max_overhead}; \
         allocations: primitives {primitive_allocations}/200k records, \
         serve hits {serve_hit_allocations}/{HIT_PASS} queries",
        HIT_PASS as f64 / secs_plain_serve / 1e6,
        HIT_PASS as f64 / secs_obs_serve / 1e6,
        secs_plain_train,
        secs_obs_train,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"serve\": \"TransE d={DIM} |E|={ENTITIES} warm LRU, {HIT_PASS} hits/pass, best of 7\",\n    \"train\": \"TransE d=32 |T|=12000 NSCaching pool({TRAIN_SHARDS}), best of {EPOCHS} epochs\"\n  }},\n  \"serve_hit_overhead\": {serve_overhead:.4},\n  \"trainer_epoch_overhead\": {train_overhead:.4},\n  \"max_allowed_overhead\": {max_overhead},\n  \"steady_state_allocations\": {{\n    \"histogram_and_counter_per_200k_records\": {primitive_allocations},\n    \"instrumented_serve_hit_per_{HIT_PASS}_queries\": {serve_hit_allocations}\n  }},\n  \"note\": \"the hit path takes zero clock reads by design (CacheStats bridge at scrape time); train timers cut once per phase per batch — the gate (NSC_OBS_OVERHEAD_MAX) bounds the instrumented/plain wall-clock ratio on both\"\n}}"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json");
    if let Err(e) = nscaching_bench::update_bench_section(&path, "obs", "obs_overhead", &section) {
        eprintln!("could not record BENCH_obs.json at {path:?}: {e}");
    }

    assert_eq!(
        primitive_allocations, 0,
        "histogram records and counter increments must not allocate"
    );
    assert_eq!(
        serve_hit_allocations, 0,
        "instrumented steady-state cache hits must not allocate"
    );
    assert!(
        serve_overhead <= max_overhead,
        "instrumented serve hit path exceeds the overhead budget: \
         {serve_overhead:.4} > {max_overhead} (override with NSC_OBS_OVERHEAD_MAX)"
    );
    assert!(
        train_overhead <= max_overhead,
        "instrumented pooled trainer exceeds the overhead budget: \
         {train_overhead:.4} > {max_overhead} (override with NSC_OBS_OVERHEAD_MAX)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_obs_overhead
}
criterion_main!(benches);
