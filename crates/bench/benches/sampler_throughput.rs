//! Criterion bench: per-triplet negative-sampling cost of every method
//! (the measured counterpart of Table I's complexity column).
//!
//! Run with `cargo bench -p nscaching-bench --bench sampler_throughput`.
//!
//! Besides the timing groups, this binary asserts the fast-path guarantees
//! the batched scoring API makes: the NSCaching sampler performs **zero heap
//! allocations per positive in steady state** (counted by a wrapping global
//! allocator) and batched TransE candidate scoring at d = 128 is **≥3×**
//! faster than the per-triple loop it replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::{CorruptionSide, Dataset, EntityId, Triple};
use nscaching_math::seeded_rng;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocation-counting wrapper around the system allocator; the steady-state
/// assertion below reads the counter around the sampler hot loop.
struct CountingAllocator;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn dataset() -> Dataset {
    let mut config = GeneratorConfig::small("bench-sampler");
    config.num_entities = 1_000;
    config.num_train = 6_000;
    config.num_valid = 200;
    config.num_test = 200;
    config.seed = 1;
    nscaching_datagen::generate(&config).expect("generation succeeds")
}

fn model(dataset: &Dataset) -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(50)
            .with_seed(3),
        dataset.num_entities(),
        dataset.num_relations(),
    )
}

fn sampler_configs() -> Vec<(&'static str, SamplerConfig)> {
    vec![
        ("uniform", SamplerConfig::Uniform),
        ("bernoulli", SamplerConfig::Bernoulli),
        (
            "nscaching",
            SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        ),
        ("kbgan", SamplerConfig::kbgan_default()),
        ("igan", SamplerConfig::igan_default()),
    ]
}

fn bench_sample(c: &mut Criterion) {
    let dataset = dataset();
    let model = model(&dataset);
    let mut group = c.benchmark_group("negative_sample");
    for (name, config) in sampler_configs() {
        let mut sampler = build_sampler(&config, &dataset, 7);
        let mut rng = seeded_rng(11);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let positive = dataset.train[i % dataset.train.len()];
                i += 1;
                black_box(sampler.sample(&positive, model.as_ref(), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_sample_and_update(c: &mut Criterion) {
    let dataset = dataset();
    let model = model(&dataset);
    let mut group = c.benchmark_group("sample_plus_update");
    // Only the methods with per-triple state updates are interesting here.
    for (name, config) in [
        (
            "nscaching_n50",
            SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        ),
        (
            "nscaching_n10",
            SamplerConfig::NsCaching(NsCachingConfig::new(10, 10)),
        ),
        ("kbgan", SamplerConfig::kbgan_default()),
    ] {
        let mut sampler = build_sampler(&config, &dataset, 7);
        let mut rng = seeded_rng(13);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let positive = dataset.train[i % dataset.train.len()];
                i += 1;
                let negative = sampler.sample(&positive, model.as_ref(), &mut rng);
                let reward = model.score(&negative.triple);
                sampler.feedback(&positive, &negative, reward, &mut rng);
                sampler.update(&positive, model.as_ref(), &mut rng);
                black_box(negative)
            })
        });
    }
    group.finish();
}

/// Drive the NSCaching sampler to steady state (every cache key touched,
/// every scratch buffer at its high-water mark), then assert the hot loop
/// performs zero heap allocations per positive.
fn assert_steady_state_never_allocates(_c: &mut Criterion) {
    let dataset = dataset();
    let model = model(&dataset);
    // Importance sampling from the cache forces the scoring path in both
    // `sample` and `update`, covering all scratch buffers.
    let config =
        NsCachingConfig::new(50, 50).with_sample_strategy(nscaching::SampleStrategy::Importance);
    let mut sampler = build_sampler(&SamplerConfig::NsCaching(config), &dataset, 7);
    let mut rng = seeded_rng(29);
    for _ in 0..2 {
        for positive in &dataset.train {
            black_box(sampler.sample(positive, model.as_ref(), &mut rng));
            sampler.update(positive, model.as_ref(), &mut rng);
        }
    }
    let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
    let probes = 1_000;
    for positive in dataset.train.iter().take(probes) {
        black_box(sampler.sample(positive, model.as_ref(), &mut rng));
        sampler.update(positive, model.as_ref(), &mut rng);
    }
    let allocations = ALLOCATION_COUNT.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "NSCaching steady state must be allocation-free, saw {allocations} allocations over {probes} positives"
    );
    println!("steady_state_allocations_per_positive: 0 (over {probes} positives)");
}

/// Best-of-samples timer for the fast-path speedup assertion (minimum of 7
/// samples — the least noise-inflated estimate of each side's true cost).
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm up, then take the best of 7 samples of 2000 iterations.
    for _ in 0..200 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let iters = 2_000;
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// The ISSUE's acceptance bar: batched TransE candidate scoring at d = 128
/// over 64-candidate batches must be at least 3× the per-triple loop.
fn assert_batched_transe_speedup(_c: &mut Criterion) {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(128)
            .with_seed(3),
        2_000,
        20,
    );
    let candidates: Vec<EntityId> = (0..64u32).map(|i| (i * 31 + 7) % 2_000).collect();
    let triple = Triple::new(3, 5, 11);

    let loop_ns = time_ns(|| {
        let mut acc = 0.0;
        for &e in &candidates {
            acc += model.score(&triple.corrupted(CorruptionSide::Tail, e));
        }
        black_box(acc);
    });
    let mut out = Vec::with_capacity(candidates.len());
    let batched_ns = time_ns(|| {
        model.score_candidates(&triple, CorruptionSide::Tail, &candidates, &mut out);
        black_box(out.iter().sum::<f64>());
    });
    let speedup = loop_ns / batched_ns;
    println!(
        "transe_candidate_scoring_d128_b64: loop {loop_ns:.0} ns, batched {batched_ns:.0} ns, speedup {speedup:.2}x"
    );
    // 3× is the local acceptance bar; shared CI runners are noisier and
    // narrower (AVX2, throttling), so the workflow relaxes the gate via this
    // env var rather than letting unrelated PRs fail on scheduler jitter.
    let required: f64 = std::env::var("NSCACHING_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    assert!(
        speedup >= required,
        "batched TransE candidate scoring must be ≥{required}× the per-triple loop, got {speedup:.2}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = assert_steady_state_never_allocates, assert_batched_transe_speedup,
        bench_sample, bench_sample_and_update
}
criterion_main!(benches);
