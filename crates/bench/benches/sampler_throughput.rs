//! Criterion bench: per-triplet negative-sampling cost of every method
//! (the measured counterpart of Table I's complexity column).
//!
//! Run with `cargo bench -p nscaching-bench --bench sampler_throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_math::seeded_rng;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use std::hint::black_box;

fn dataset() -> Dataset {
    let mut config = GeneratorConfig::small("bench-sampler");
    config.num_entities = 1_000;
    config.num_train = 6_000;
    config.num_valid = 200;
    config.num_test = 200;
    config.seed = 1;
    nscaching_datagen::generate(&config).expect("generation succeeds")
}

fn model(dataset: &Dataset) -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(ModelKind::TransE).with_dim(50).with_seed(3),
        dataset.num_entities(),
        dataset.num_relations(),
    )
}

fn sampler_configs() -> Vec<(&'static str, SamplerConfig)> {
    vec![
        ("uniform", SamplerConfig::Uniform),
        ("bernoulli", SamplerConfig::Bernoulli),
        (
            "nscaching",
            SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        ),
        ("kbgan", SamplerConfig::kbgan_default()),
        ("igan", SamplerConfig::igan_default()),
    ]
}

fn bench_sample(c: &mut Criterion) {
    let dataset = dataset();
    let model = model(&dataset);
    let mut group = c.benchmark_group("negative_sample");
    for (name, config) in sampler_configs() {
        let mut sampler = build_sampler(&config, &dataset, 7);
        let mut rng = seeded_rng(11);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let positive = dataset.train[i % dataset.train.len()];
                i += 1;
                black_box(sampler.sample(&positive, model.as_ref(), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_sample_and_update(c: &mut Criterion) {
    let dataset = dataset();
    let model = model(&dataset);
    let mut group = c.benchmark_group("sample_plus_update");
    // Only the methods with per-triple state updates are interesting here.
    for (name, config) in [
        (
            "nscaching_n50",
            SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        ),
        (
            "nscaching_n10",
            SamplerConfig::NsCaching(NsCachingConfig::new(10, 10)),
        ),
        ("kbgan", SamplerConfig::kbgan_default()),
    ] {
        let mut sampler = build_sampler(&config, &dataset, 7);
        let mut rng = seeded_rng(13);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let positive = dataset.train[i % dataset.train.len()];
                i += 1;
                let negative = sampler.sample(&positive, model.as_ref(), &mut rng);
                let reward = model.score(&negative.triple);
                sampler.feedback(&positive, &negative, reward, &mut rng);
                sampler.update(&positive, model.as_ref(), &mut rng);
                black_box(negative)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sample, bench_sample_and_update
}
criterion_main!(benches);
