//! Criterion bench: score and gradient cost of every scoring function
//! (supports the per-triplet `O(d)` / `O(d²)` terms in Table I).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching_kg::Triple;
use nscaching_models::{build_model, GradientBuffer, ModelConfig, ModelKind};
use std::hint::black_box;

const NUM_ENTITIES: usize = 2_000;
const NUM_RELATIONS: usize = 20;

fn bench_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("score");
    for kind in ModelKind::ALL {
        let model = build_model(
            &ModelConfig::new(kind).with_dim(50).with_seed(1),
            NUM_ENTITIES,
            NUM_RELATIONS,
        );
        let mut i = 0u32;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let t = Triple::new(
                    i % NUM_ENTITIES as u32,
                    i % NUM_RELATIONS as u32,
                    (i * 7 + 1) % NUM_ENTITIES as u32,
                );
                black_box(model.score(&t))
            })
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_gradient");
    for kind in ModelKind::ALL {
        let model = build_model(
            &ModelConfig::new(kind).with_dim(50).with_seed(1),
            NUM_ENTITIES,
            NUM_RELATIONS,
        );
        let mut i = 0u32;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let t = Triple::new(
                    i % NUM_ENTITIES as u32,
                    i % NUM_RELATIONS as u32,
                    (i * 7 + 1) % NUM_ENTITIES as u32,
                );
                let mut grads = GradientBuffer::new();
                model.accumulate_score_gradient(&t, 1.0, &mut grads);
                black_box(grads.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_score, bench_gradient
}
criterion_main!(benches);
