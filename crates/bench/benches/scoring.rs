//! Criterion bench: score and gradient cost of every scoring function
//! (supports the per-triplet `O(d)` / `O(d²)` terms in Table I), plus the
//! batched candidate-scoring fast path against the naive per-triple loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_models::{build_model, GradientBuffer, ModelConfig, ModelKind};
use std::hint::black_box;

const NUM_ENTITIES: usize = 2_000;
const NUM_RELATIONS: usize = 20;

/// The acceptance configuration: d = 128, batches of 64 candidates.
const BATCH_DIM: usize = 128;
const BATCH_SIZE: usize = 64;

fn bench_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("score");
    for kind in ModelKind::ALL {
        let model = build_model(
            &ModelConfig::new(kind).with_dim(50).with_seed(1),
            NUM_ENTITIES,
            NUM_RELATIONS,
        );
        let mut i = 0u32;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let t = Triple::new(
                    i % NUM_ENTITIES as u32,
                    i % NUM_RELATIONS as u32,
                    (i * 7 + 1) % NUM_ENTITIES as u32,
                );
                black_box(model.score(&t))
            })
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_gradient");
    for kind in ModelKind::ALL {
        let model = build_model(
            &ModelConfig::new(kind).with_dim(50).with_seed(1),
            NUM_ENTITIES,
            NUM_RELATIONS,
        );
        let mut i = 0u32;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let t = Triple::new(
                    i % NUM_ENTITIES as u32,
                    i % NUM_RELATIONS as u32,
                    (i * 7 + 1) % NUM_ENTITIES as u32,
                );
                let mut grads = GradientBuffer::new();
                model.accumulate_score_gradient(&t, 1.0, &mut grads);
                black_box(grads.len())
            })
        });
    }
    group.finish();
}

/// Batched `score_candidates` vs the per-triple `score` loop it replaced,
/// for every model at d = 128 with 64-candidate batches. The ISSUE's
/// acceptance bar is ≥3× on TransE; the assertion lives in
/// `sampler_throughput`'s smoke test, this bench produces the numbers for
/// `BENCH_scoring.json`.
fn bench_candidate_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scoring");
    for kind in ModelKind::ALL {
        // TransR/RESCAL carry d×d matrices; keep their tables small enough
        // to build quickly while scoring identically per candidate.
        let dim = match kind {
            ModelKind::TransR | ModelKind::Rescal => 64,
            _ => BATCH_DIM,
        };
        let model = build_model(
            &ModelConfig::new(kind).with_dim(dim).with_seed(1),
            NUM_ENTITIES,
            NUM_RELATIONS,
        );
        let candidates: Vec<EntityId> = (0..BATCH_SIZE as u32)
            .map(|i| (i * 31 + 7) % NUM_ENTITIES as u32)
            .collect();
        let triple = Triple::new(3, 5, 11);

        let mut i = 0usize;
        group.bench_function(
            BenchmarkId::from_parameter(format!("{}_loop", kind.name())),
            |b| {
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let side = CorruptionSide::BOTH[i % 2];
                    let mut acc = 0.0;
                    for &e in &candidates {
                        acc += model.score(&triple.corrupted(side, e));
                    }
                    black_box(acc)
                })
            },
        );

        let mut out = Vec::with_capacity(BATCH_SIZE);
        let mut i = 0usize;
        group.bench_function(
            BenchmarkId::from_parameter(format!("{}_batched", kind.name())),
            |b| {
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let side = CorruptionSide::BOTH[i % 2];
                    model.score_candidates(&triple, side, &candidates, &mut out);
                    black_box(out.iter().sum::<f64>())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_score, bench_gradient, bench_candidate_batch
}
criterion_main!(benches);
