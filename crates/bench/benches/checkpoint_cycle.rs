//! Criterion bench: the crash-recovery path — checkpoint save / restore
//! latency and the managed save → recover cycle.
//!
//! Run with `cargo bench -p nscaching-bench --bench checkpoint_cycle`.
//!
//! The checkpoint now carries a **sampler section** (NSCaching's per-shard
//! `H`/`T` caches here), so this bench times the full-state frame an online
//! deployment actually writes: model tables + optimizer slabs + trainer
//! counters + sampler state, staged, fsynced and atomically renamed by
//! `write_frame`. Restore is the mirrored path: checksum-verified read plus
//! every section decode.
//!
//! Records into the `checkpoint_cycle` section of `BENCH_serve.json`:
//!
//! * `save_ms` / `load_ms` — one-file checkpoint and restore wall-clock
//!   (best-of, durability syscalls included);
//! * `manager_cycle_ms` — `CheckpointManager::save` (sequence numbering +
//!   retention rotation) followed by `recover` (newest-first validation);
//! * `checkpoint_bytes` — the frame size being paid for.
//!
//! Restore correctness rides along: every measured load is decoded from the
//! frame, and a final resume is asserted to land on the saved trainer's
//! model bits.

use criterion::{criterion_group, criterion_main, Criterion};
use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_serve::{load_checkpoint, save_checkpoint, CheckpointManager};
use nscaching_train::{TrainConfig, Trainer};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Bench design point: a small-but-real full-state checkpoint.
const NUM_ENTITIES: usize = 2_000;
const NUM_TRAIN: usize = 6_000;
const DIM: usize = 32;

fn bench_dir() -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nscaching-checkpoint-cycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A trainer with one epoch behind it, so the NSCaching caches, optimizer
/// slabs and RNG state are all populated — an empty sampler section would
/// undersell the frame.
fn trained_trainer() -> Trainer {
    let mut c = GeneratorConfig::small("checkpoint-cycle");
    c.num_entities = NUM_ENTITIES;
    c.num_train = NUM_TRAIN;
    c.num_valid = 50;
    c.num_test = 50;
    c.seed = 17;
    let ds: Dataset = nscaching_datagen::generate(&c).unwrap();
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(DIM)
            .with_seed(5),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = nscaching::build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::default()),
        &ds,
        9,
    );
    let config = TrainConfig::new(2)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.01))
        .with_seed(3);
    let mut trainer = Trainer::new(model, sampler, &ds, config);
    trainer.train_epoch();
    trainer
}

/// Best-of-`samples` milliseconds for one `call` invocation.
fn best_ms(samples: usize, mut call: impl FnMut()) -> f64 {
    call(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        call();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure_and_record(_c: &mut Criterion) {
    let samples = 7;
    let dir = bench_dir();
    let trainer = trained_trainer();

    // One-file save / load.
    let file = dir.join("cycle.ckpt");
    let save_ms = best_ms(samples, || {
        save_checkpoint(&file, black_box(&trainer)).unwrap();
    });
    let checkpoint_bytes = std::fs::metadata(&file).unwrap().len();
    let load_ms = best_ms(samples, || {
        black_box(load_checkpoint(&file).unwrap());
    });

    // Managed cycle: sequence-numbered save with retention rotation, then
    // full newest-first recovery.
    let managed = dir.join("managed");
    let manager = CheckpointManager::new(&managed, 2).unwrap();
    let manager_cycle_ms = best_ms(samples, || {
        manager.save(black_box(&trainer)).unwrap();
        black_box(manager.recover().unwrap().expect("a checkpoint exists"));
    });

    // Restore correctness rides along with the timing claims.
    let restored = load_checkpoint(&file).unwrap();
    let saved_bits: Vec<u64> = trainer
        .model()
        .tables()
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect();
    let restored_bits: Vec<u64> = restored
        .model
        .tables
        .iter()
        .flat_map(|t| t.data.iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(saved_bits, restored_bits, "restore must be bit-identical");

    println!(
        "checkpoint_cycle: save {save_ms:.2}ms, load {load_ms:.2}ms, \
         manager save+recover {manager_cycle_ms:.2}ms, frame {checkpoint_bytes} bytes"
    );

    let section = format!(
        "{{\n  \"workload\": \"TransE d={DIM} |E|={NUM_ENTITIES} |T|={NUM_TRAIN}, Adam, NSCaching sampler after one epoch (full-state frame: model + optimizer + trainer + sampler sections)\",\n  \"save_ms\": {save_ms:.2},\n  \"load_ms\": {load_ms:.2},\n  \"manager_cycle_ms\": {manager_cycle_ms:.2},\n  \"checkpoint_bytes\": {checkpoint_bytes},\n  \"note\": \"save includes staging fsync + atomic rename + directory fsync; manager_cycle adds sequence numbering, keep-2 rotation and newest-first checksum-verified recovery. Restore is asserted bit-identical on every run\"\n}}"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "serve", "checkpoint_cycle", &section)
    {
        eprintln!("could not record BENCH_serve.json at {path:?}: {e}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = measure_and_record
}
criterion_main!(benches);
