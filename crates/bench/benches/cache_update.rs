//! Criterion bench: cost of the Algorithm 3 cache update as a function of the
//! cache size N1 and the random-subset size N2 (the `O((N1 + N2)·d)` claim of
//! Table I, and the cost side of the Figure 9 sensitivity study).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching::{CorruptionPolicy, NegativeSampler, NsCachingConfig, NsCachingSampler};
use nscaching_kg::Triple;
use nscaching_math::seeded_rng;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use std::hint::black_box;

const NUM_ENTITIES: usize = 2_000;
const NUM_RELATIONS: usize = 20;

fn bench_cache_update(c: &mut Criterion) {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(50)
            .with_seed(1),
        NUM_ENTITIES,
        NUM_RELATIONS,
    );
    let mut group = c.benchmark_group("cache_update");
    for &(n1, n2) in &[
        (10usize, 10usize),
        (30, 30),
        (50, 50),
        (70, 70),
        (90, 90),
        (50, 10),
        (10, 50),
    ] {
        let config = NsCachingConfig::new(n1, n2);
        let mut sampler = NsCachingSampler::new(config, NUM_ENTITIES, CorruptionPolicy::Uniform);
        let mut rng = seeded_rng(5);
        let mut i = 0u32;
        group.bench_function(
            BenchmarkId::from_parameter(format!("n1={n1}_n2={n2}")),
            |b| {
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let positive = Triple::new(
                        i % NUM_ENTITIES as u32,
                        i % NUM_RELATIONS as u32,
                        (i * 13 + 1) % NUM_ENTITIES as u32,
                    );
                    sampler.update(&positive, model.as_ref(), &mut rng);
                    black_box(sampler.refresh_count())
                })
            },
        );
    }
    group.finish();
}

fn bench_lazy_update_schedule(c: &mut Criterion) {
    // Compares an epoch with updates enabled against one with lazy updates
    // disabling them — the `n`-epoch lazy-update knob of Table I.
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(50)
            .with_seed(1),
        NUM_ENTITIES,
        NUM_RELATIONS,
    );
    let mut group = c.benchmark_group("lazy_update");
    for (name, lazy) in [("every_epoch", 0usize), ("every_3rd_epoch", 2)] {
        let config = NsCachingConfig::new(50, 50).with_lazy_update(lazy);
        let mut sampler = NsCachingSampler::new(config, NUM_ENTITIES, CorruptionPolicy::Uniform);
        // Put the sampler into the "skipped" phase of the schedule when lazy.
        sampler.epoch_finished(0);
        let mut rng = seeded_rng(6);
        let mut i = 0u32;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let positive = Triple::new(
                    i % NUM_ENTITIES as u32,
                    i % NUM_RELATIONS as u32,
                    (i * 13 + 1) % NUM_ENTITIES as u32,
                );
                let neg = sampler.sample(&positive, model.as_ref(), &mut rng);
                sampler.update(&positive, model.as_ref(), &mut rng);
                black_box(neg)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_update, bench_lazy_update_schedule
}
criterion_main!(benches);
