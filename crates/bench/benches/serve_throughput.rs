//! Criterion bench: online serving throughput of `nscaching_serve`'s
//! `KnowledgeServer` under a skewed (Zipf) top-k query stream.
//!
//! Run with `cargo bench -p nscaching-bench --bench serve_throughput`.
//!
//! Measures and records into the `serve_throughput` section of
//! `BENCH_serve.json` at the workspace root:
//!
//! * **uncached top-k** — one full `score_all_into` scan + `top_k` selection
//!   per query, through caller-reused scratch (the allocation-free hot path);
//! * **warm LRU hits** — the same stream answered out of the query-result
//!   cache. The gated headline (`NSC_SERVE_LRU_MIN`, ≥ 5× locally; CI
//!   relaxes it on shared runners like the other bench gates) is the
//!   warm-hit/uncached throughput ratio on the Zipf stream — the design
//!   point of serving skewed production traffic from a small hot cache;
//! * **pooled batch fan-out** — the stream answered through
//!   `top_k_batch` over a 4-worker `WorkerPool` (recorded, not gated — on a
//!   1-core container the pool adds only dispatch overhead).
//!
//! The bench also asserts the tentpole's allocation contract: after warm-up,
//! steady-state queries perform **zero heap allocations** — on the uncached
//! path (scratch at its high-water marks) *and* on the cache-hit path (an
//! `Arc` clone out of a pre-sized LRU).

use criterion::{criterion_group, criterion_main, Criterion};
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_serve::{BatchScratch, KnowledgeServer, QueryScratch, TopKQuery};
use nscaching_train::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAllocator;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const DIM: usize = 64;
const ENTITIES: usize = 2_000;
const RELATIONS: usize = 32;
const K: u32 = 10;
/// Distinct query keys in the universe…
const DISTINCT_QUERIES: usize = 512;
/// …of which the LRU holds at most this many answers.
const CACHE_CAPACITY: usize = 256;
/// Length of the sampled query stream.
const STREAM: usize = 4_096;
/// Zipf skew exponent (s > 1 concentrates mass on the head, like real
/// entity-lookup traffic).
const ZIPF_S: f64 = 1.2;

fn server() -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(DIM)
            .with_seed(3),
        ENTITIES,
        RELATIONS,
    );
    KnowledgeServer::new(model, CACHE_CAPACITY)
}

/// A Zipf-distributed stream over `DISTINCT_QUERIES` distinct top-k queries:
/// rank `r` is drawn with probability ∝ 1/(r+1)^s. Deterministic.
fn zipf_stream() -> Vec<TopKQuery> {
    let universe: Vec<TopKQuery> = (0..DISTINCT_QUERIES)
        .map(|i| {
            let entity = ((i * 131) % ENTITIES) as u32;
            let relation = ((i * 17) % RELATIONS) as u32;
            if i % 2 == 0 {
                TopKQuery::tails(entity, relation, K)
            } else {
                TopKQuery::heads(entity, relation, K)
            }
        })
        .collect();
    let weights: Vec<f64> = (0..DISTINCT_QUERIES)
        .map(|r| 1.0 / ((r + 1) as f64).powf(ZIPF_S))
        .collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total = *cumulative.last().unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    (0..STREAM)
        .map(|_| {
            let u = rng.gen::<f64>() * total;
            let rank = cumulative.partition_point(|&c| c < u);
            universe[rank.min(DISTINCT_QUERIES - 1)]
        })
        .collect()
}

/// Best-of-`samples` seconds for one full pass over the stream.
fn best_pass_seconds(samples: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_query_paths(c: &mut Criterion) {
    let server = server();
    let stream = zipf_stream();
    let mut group = c.benchmark_group("serve_query");
    group.sample_size(10);
    {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        let mut i = 0;
        group.bench_function("uncached_topk", |b| {
            b.iter(|| {
                let query = &stream[i % stream.len()];
                i += 1;
                server
                    .top_k_into(black_box(query), &mut scratch, &mut out)
                    .unwrap();
                black_box(out.len());
            })
        });
    }
    {
        let mut scratch = QueryScratch::default();
        for query in &stream {
            black_box(server.top_k(query, &mut scratch).unwrap());
        }
        let mut i = 0;
        group.bench_function("warm_lru_topk", |b| {
            b.iter(|| {
                let query = &stream[i % stream.len()];
                i += 1;
                black_box(server.top_k(black_box(query), &mut scratch).unwrap());
            })
        });
    }
    group.finish();
}

/// Acceptance gates: warm-LRU ≥ `NSC_SERVE_LRU_MIN`× the uncached path on
/// the Zipf stream, and zero steady-state allocations per query on both
/// paths. Records `BENCH_serve.json`.
fn assert_serve_throughput(_c: &mut Criterion) {
    let stream = zipf_stream();
    let samples = 5;

    // --- Zero steady-state allocations: uncached path.
    let uncached_allocations = {
        let server = server();
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        for query in stream.iter().take(64) {
            server.top_k_into(query, &mut scratch, &mut out).unwrap();
        }
        let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
        for query in stream.iter().take(512) {
            server.top_k_into(query, &mut scratch, &mut out).unwrap();
            black_box(out.len());
        }
        ALLOCATION_COUNT.load(Ordering::Relaxed) - before
    };

    // --- Zero steady-state allocations: cache-hit path. Use a hit-only
    //     subset (≤ capacity distinct keys, all warmed) so no insert runs.
    let hit_allocations = {
        let server = server();
        let mut scratch = QueryScratch::default();
        let hot: Vec<&TopKQuery> = stream
            .iter()
            .filter(|q| (q.entity as usize).is_multiple_of(8))
            .take(CACHE_CAPACITY / 2)
            .collect();
        for query in &hot {
            black_box(server.top_k(query, &mut scratch).unwrap());
        }
        let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
        for _ in 0..4 {
            for query in &hot {
                black_box(server.top_k(query, &mut scratch).unwrap());
            }
        }
        ALLOCATION_COUNT.load(Ordering::Relaxed) - before
    };

    // --- Throughput: uncached vs warm-LRU over the same Zipf stream.
    let secs_uncached = {
        let server = server();
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        best_pass_seconds(samples, || {
            for query in &stream {
                server.top_k_into(query, &mut scratch, &mut out).unwrap();
                black_box(out.len());
            }
        })
    };
    let (secs_warm, hit_rate) = {
        let server = server();
        let mut scratch = QueryScratch::default();
        // One cold pass fills the cache with the stream's hot set.
        for query in &stream {
            black_box(server.top_k(query, &mut scratch).unwrap());
        }
        let stats_before = server.cache_stats();
        let secs = best_pass_seconds(samples, || {
            for query in &stream {
                black_box(server.top_k(query, &mut scratch).unwrap());
            }
        });
        let stats = server.cache_stats();
        let lookups = (stats.hits + stats.misses) - (stats_before.hits + stats_before.misses);
        let hits = stats.hits - stats_before.hits;
        (secs, hits as f64 / lookups as f64)
    };

    // --- Pooled batch fan-out (recorded, not gated).
    let secs_batch = {
        let server = server();
        let mut pool = WorkerPool::new(4);
        let mut batch = BatchScratch::default();
        let mut out = Vec::new();
        best_pass_seconds(samples, || {
            server.top_k_batch(&mut pool, &stream, &mut batch, &mut out);
            black_box(out.len());
        })
    };

    let qps_uncached = stream.len() as f64 / secs_uncached;
    let qps_warm = stream.len() as f64 / secs_warm;
    let qps_batch = stream.len() as f64 / secs_batch;
    let speedup = qps_warm / qps_uncached;
    let min_speedup: f64 = std::env::var("NSC_SERVE_LRU_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);

    println!(
        "serve_throughput TransE d={DIM} |E|={ENTITIES} k={K} zipf(s={ZIPF_S}) \
         {DISTINCT_QUERIES} distinct / {CACHE_CAPACITY} cache slots: \
         uncached {qps_uncached:.0} q/s, warm LRU {qps_warm:.0} q/s = {speedup:.1}x \
         (min {min_speedup}x, hit rate {:.1}%), pool(4) batch {qps_batch:.0} q/s; \
         steady-state allocations: uncached {uncached_allocations}, hits {hit_allocations}",
        hit_rate * 100.0,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransE\",\n    \"dim\": {DIM},\n    \"num_entities\": {ENTITIES},\n    \"num_relations\": {RELATIONS},\n    \"k\": {K},\n    \"stream\": {},\n    \"distinct_queries\": {DISTINCT_QUERIES},\n    \"zipf_exponent\": {ZIPF_S},\n    \"cache_capacity\": {CACHE_CAPACITY}\n  }},\n  \"queries_per_second\": {{\n    \"uncached_topk\": {qps_uncached:.0},\n    \"warm_lru_topk\": {qps_warm:.0},\n    \"pool4_batch_topk\": {qps_batch:.0}\n  }},\n  \"warm_hit_rate\": {hit_rate:.4},\n  \"lru_speedup\": {speedup:.2},\n  \"min_required_lru_speedup\": {min_speedup},\n  \"steady_state_allocations\": {{\n    \"uncached_per_512_queries\": {uncached_allocations},\n    \"cache_hit_per_{}_queries\": {hit_allocations}\n  }},\n  \"note\": \"warm-LRU gate (NSC_SERVE_LRU_MIN) is the read-mostly serving design point: a version-invalidated hot cache absorbing the head of a Zipf stream; the pooled batch number is dispatch-bound on narrow hosts — see available_parallelism\"\n}}",
        stream.len(),
        4 * CACHE_CAPACITY / 2,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "serve", "serve_throughput", &section)
    {
        eprintln!("could not record BENCH_serve.json at {path:?}: {e}");
    }

    assert_eq!(
        uncached_allocations, 0,
        "steady-state uncached top-k queries must not allocate"
    );
    assert_eq!(
        hit_allocations, 0,
        "steady-state cache hits must not allocate"
    );
    assert!(
        speedup >= min_speedup,
        "warm-LRU top-k must be ≥{min_speedup}x the uncached path on the Zipf stream \
         (got {speedup:.2}x; override with NSC_SERVE_LRU_MIN)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_serve_throughput, bench_query_paths
}
criterion_main!(benches);
