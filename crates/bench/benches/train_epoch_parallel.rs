//! Criterion bench: epoch throughput of the sharded parallel training
//! pipeline vs the sequential trainer.
//!
//! Run with `cargo bench -p nscaching-bench --bench train_epoch_parallel`.
//!
//! Besides the timing groups, this binary asserts the sharded engine's
//! acceptance bar — a 4-shard `train_epoch` is **≥2×** the 1-shard epoch
//! throughput on a TransE/FB15K-shaped synthetic workload — and records the
//! measured numbers in `BENCH_parallel.json` at the workspace root. The 2×
//! gate requires hardware that can actually run 4 workers: on hosts with
//! fewer than 4 available cores the gate degrades gracefully (speedup is
//! recorded but only a no-collapse bound is asserted), and the
//! `NSC_PARALLEL_SPEEDUP_MIN` environment variable overrides the bar either
//! way — the same relaxation mechanism the CI workflow uses for the batched
//! scoring gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{TrainConfig, TrainData, Trainer};
use std::hint::black_box;
use std::time::Instant;

/// FB15K-shaped synthetic workload: dense multi-relational graph, scaled so
/// a full epoch finishes in tens of milliseconds (the measurement is
/// per-epoch wall clock, so the shape — not the absolute size — is what
/// matters for the speedup ratio).
fn dataset() -> Dataset {
    let mut config = GeneratorConfig::small("bench-parallel-fb15k");
    config.num_entities = 1_500;
    config.num_relations = 120;
    config.num_train = 8_000;
    config.num_valid = 200;
    config.num_test = 200;
    config.seed = 1;
    nscaching_datagen::generate(&config).expect("generation succeeds")
}

fn trainer(data: &TrainData, dataset: &Dataset, shards: usize) -> Trainer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(64)
            .with_seed(3),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    // NSCaching with the paper's N1 = N2 = 50: the sample + Algorithm 3
    // refresh work dominates the epoch, which is exactly the stage the
    // sharded pipeline parallelises.
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        dataset,
        7,
    );
    let config = TrainConfig::new(0)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(3.0)
        .with_seed(11)
        .with_shards(shards);
    Trainer::new(model, sampler, data, config)
}

/// Best-of-N epoch seconds after a warm-up epoch (caches materialised,
/// scratch at high-water marks).
fn epoch_seconds(data: &TrainData, dataset: &Dataset, shards: usize, samples: usize) -> f64 {
    let mut t = trainer(data, dataset, shards);
    t.train_epoch(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        black_box(t.train_epoch());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_epoch_by_shards(c: &mut Criterion) {
    let dataset = dataset();
    let data = TrainData::from_dataset(&dataset);
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let mut t = trainer(&data, &dataset, shards);
        t.train_epoch(); // warm-up
        group.bench_function(
            BenchmarkId::from_parameter(format!("shards_{shards}")),
            |b| b.iter(|| black_box(t.train_epoch())),
        );
    }
    group.finish();
}

/// The ISSUE's acceptance bar: ≥2× epoch throughput at 4 shards, recorded in
/// `BENCH_parallel.json`.
fn assert_parallel_epoch_speedup(_c: &mut Criterion) {
    let dataset = dataset();
    let data = TrainData::from_dataset(&dataset);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let secs_1 = epoch_seconds(&data, &dataset, 1, 3);
    let secs_2 = epoch_seconds(&data, &dataset, 2, 3);
    let secs_4 = epoch_seconds(&data, &dataset, 4, 3);
    let speedup_2 = secs_1 / secs_2;
    let speedup_4 = secs_1 / secs_4;

    // 2.0 with ≥4 usable cores; on narrower hosts wall-clock parallel speedup
    // is physically unavailable, so only a no-collapse bound is enforced and
    // the measured ratio is recorded for the hardware that can check the bar.
    let default_required = if cores >= 4 {
        2.0
    } else if cores >= 2 {
        1.2
    } else {
        0.25
    };
    let required: f64 = std::env::var("NSC_PARALLEL_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_required);

    println!(
        "train_epoch TransE d=64 NSCaching(50,50) |train|={}: \
         1 shard {:.1} ms, 2 shards {:.1} ms ({speedup_2:.2}x), \
         4 shards {:.1} ms ({speedup_4:.2}x) on {cores} core(s); required ≥{required}x",
        dataset.train.len(),
        secs_1 * 1e3,
        secs_2 * 1e3,
        secs_4 * 1e3,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransE\",\n    \"dim\": 64,\n    \"sampler\": \"NSCaching(N1=50, N2=50)\",\n    \"num_entities\": {},\n    \"num_train\": {},\n    \"batch_size\": 256\n  }},\n  \"cores\": {cores},\n  \"epoch_seconds\": {{\n    \"shards_1\": {secs_1:.6},\n    \"shards_2\": {secs_2:.6},\n    \"shards_4\": {secs_4:.6}\n  }},\n  \"speedup_2_shards\": {speedup_2:.3},\n  \"speedup_4_shards\": {speedup_4:.3},\n  \"required_speedup\": {required},\n  \"note\": \"acceptance bar is >=2x at 4 shards on hosts with >=4 cores; narrower hosts record the ratio and assert only a no-collapse bound (override with NSC_PARALLEL_SPEEDUP_MIN)\"\n}}",
        dataset.num_entities(),
        dataset.train.len(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel.json");
    if let Err(e) = nscaching_bench::update_bench_section(
        &path,
        "train_epoch_parallel",
        "train_epoch_parallel",
        &section,
    ) {
        eprintln!("could not record BENCH_parallel.json at {path:?}: {e}");
    }

    assert!(
        speedup_4 >= required,
        "4-shard train_epoch must be ≥{required}x the sequential epoch \
         (got {speedup_4:.2}x on {cores} cores)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_parallel_epoch_speedup, bench_epoch_by_shards
}
criterion_main!(benches);
