//! Criterion bench: TransR candidate scoring through the relation-projection
//! cache vs the retired dense per-candidate path.
//!
//! Run with `cargo bench -p nscaching-bench --bench transr_projection`.
//!
//! The ISSUE's acceptance bar — warm projection-cached `score_candidates` is
//! **≥3×** the uncached `O(d²)` path at `d = 64`, `|C| = 512` — is asserted
//! here (override with `NSC_TRANSR_PROJ_SPEEDUP_MIN`) and the measured
//! numbers land in the `transr_projection` section of `BENCH_pool.json`.
//! The cold-fill cost (first scoring call after an embedding update) is
//! recorded alongside for context: it pays the same `O(d²)` products as the
//! uncached path once, plus the store into the cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::seeded_rng;
use nscaching_models::{KgeModel, TransD, TransR};
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 64;
const NUM_ENTITIES: usize = 2_000;
const NUM_RELATIONS: usize = 16;
const CANDIDATES: usize = 512;

fn candidates() -> Vec<EntityId> {
    // 512 distinct entities, striding the table like a cache entry ∪ random
    // pool would.
    (0..CANDIDATES as u32)
        .map(|i| (i * 3 + 1) % NUM_ENTITIES as u32)
        .collect()
}

/// Best-of-N seconds for one `score_candidates`-shaped call.
fn best_of<F: FnMut()>(samples: usize, iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn bench_scoring_paths(c: &mut Criterion) {
    let mut rng = seeded_rng(17);
    let transr = TransR::new(NUM_ENTITIES, NUM_RELATIONS, DIM, &mut rng);
    let transd = TransD::new(NUM_ENTITIES, NUM_RELATIONS, DIM, &mut rng);
    let cands = candidates();
    let t = Triple::new(5, 2, 9);
    let mut out = Vec::new();

    let mut group = c.benchmark_group("transr_candidates");
    group.bench_function(BenchmarkId::from_parameter("cached_warm"), |b| {
        transr.score_candidates(&t, CorruptionSide::Tail, &cands, &mut out); // warm
        b.iter(|| transr.score_candidates(&t, CorruptionSide::Tail, black_box(&cands), &mut out))
    });
    group.bench_function(BenchmarkId::from_parameter("uncached"), |b| {
        b.iter(|| {
            transr.score_candidates_uncached(&t, CorruptionSide::Tail, black_box(&cands), &mut out)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("transd_candidates");
    group.bench_function(BenchmarkId::from_parameter("cached_warm"), |b| {
        transd.score_candidates(&t, CorruptionSide::Tail, &cands, &mut out);
        b.iter(|| transd.score_candidates(&t, CorruptionSide::Tail, black_box(&cands), &mut out))
    });
    group.bench_function(BenchmarkId::from_parameter("uncached"), |b| {
        b.iter(|| {
            transd.score_candidates_uncached(&t, CorruptionSide::Tail, black_box(&cands), &mut out)
        })
    });
    group.finish();
}

/// The acceptance gate: warm cached TransR candidate scoring ≥3× the
/// uncached path, recorded in `BENCH_pool.json`.
fn assert_projection_speedup(_c: &mut Criterion) {
    let mut rng = seeded_rng(17);
    let mut transr = TransR::new(NUM_ENTITIES, NUM_RELATIONS, DIM, &mut rng);
    let cands = candidates();
    let t = Triple::new(5, 2, 9);
    let mut out = Vec::new();

    // Cold fill: invalidate via a parameter touch, then time the first call.
    let mut cold = f64::INFINITY;
    for _ in 0..5 {
        transr.tables_mut()[0].row_mut(0)[0] += 0.0; // version bump only
        let start = Instant::now();
        transr.score_candidates(&t, CorruptionSide::Tail, &cands, &mut out);
        cold = cold.min(start.elapsed().as_secs_f64());
    }

    let samples = 7;
    let iters = 50;
    transr.score_candidates(&t, CorruptionSide::Tail, &cands, &mut out); // warm
    let warm = best_of(samples, iters, || {
        transr.score_candidates(&t, CorruptionSide::Tail, black_box(&cands), &mut out)
    });
    let uncached = best_of(samples, iters, || {
        transr.score_candidates_uncached(&t, CorruptionSide::Tail, black_box(&cands), &mut out)
    });
    let speedup = uncached / warm;

    let required: f64 = std::env::var("NSC_TRANSR_PROJ_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    println!(
        "transr_projection d={DIM} |C|={CANDIDATES} |E|={NUM_ENTITIES}: \
         uncached {:.1} µs, cached warm {:.1} µs ({speedup:.1}x, required ≥{required}x), \
         cold fill {:.1} µs",
        uncached * 1e6,
        warm * 1e6,
        cold * 1e6,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransR\",\n    \"dim\": {DIM},\n    \"num_entities\": {NUM_ENTITIES},\n    \"candidates\": {CANDIDATES}\n  }},\n  \"seconds_per_call\": {{\n    \"uncached\": {uncached:.9},\n    \"cached_warm\": {warm:.9},\n    \"cold_fill\": {cold:.9}\n  }},\n  \"warm_speedup\": {speedup:.2},\n  \"required_speedup\": {required},\n  \"note\": \"warm cached batched TransR candidate scoring vs the retired dense O(d^2)-per-candidate path; gate overridable with NSC_TRANSR_PROJ_SPEEDUP_MIN\"\n}}"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pool.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "pool", "transr_projection", &section)
    {
        eprintln!("could not record BENCH_pool.json at {path:?}: {e}");
    }

    assert!(
        speedup >= required,
        "projection-cached TransR candidate scoring must be ≥{required}x the uncached \
         path at d={DIM}, |C|={CANDIDATES} (got {speedup:.2}x; override with \
         NSC_TRANSR_PROJ_SPEEDUP_MIN)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = assert_projection_speedup, bench_scoring_paths
}
criterion_main!(benches);
