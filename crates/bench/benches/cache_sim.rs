//! Trace-driven cache simulator: every eviction policy replayed over
//! synthetic serving traces, recording the hit-rate/eviction table that
//! justifies the server's default policy.
//!
//! Run with `cargo bench -p nscaching-bench --bench cache_sim`.
//!
//! Three traces, each a caricature of one production failure mode:
//!
//! * **zipf** — stationary Zipf(s = 1.2) traffic over 512 distinct keys, the
//!   skew NSCaching itself exploits (PAPER.md §4). Rewards frequency
//!   tracking: the head set should be pinned regardless of recency noise.
//! * **scan** — the same Zipf traffic polluted by periodic one-pass sweeps
//!   of cold keys (an eval run walking every entity once). Punishes plain
//!   recency: LRU dutifully caches every one-touch key at the head's
//!   expense.
//! * **shift** — Zipf traffic whose rank→key mapping rotates every quarter
//!   of the trace (popularity drift). Punishes plain frequency: LFU keeps
//!   the *old* head pinned on its historical counts.
//!
//! Each (trace, policy) cell replays the trace through a `PolicyCache` at
//! 256 slots (half the distinct-key universe) and records the exact hit
//! rate and eviction count into the `cache_sim` section of
//! `BENCH_serve.json`, plus the per-trace winner — the table
//! `CacheConfig::default()`'s policy choice cites.
//!
//! The sharded parity gate (`NSC_CACHE_SIM_OK`, the allowed absolute
//! hit-rate delta) then replays every trace through a 4-shard
//! `ShardedCache` of the same total capacity and asserts the hash-split
//! caches serve (near-)identical hit rates — sharding buys concurrency, not
//! a different eviction outcome.
//!
//! Each cell also replays with the `CacheConfig::admission` TinyLFU filter
//! in front of the policy (`tinylfu_*` columns): the scan trace is where the
//! filter should earn its keep (one-touch sweep keys lose their frequency
//! contest and never evict an incumbent), and the shift trace is where its
//! halving reset is on trial (stale frequency credit must decay fast enough
//! for the new head to buy in).

use criterion::{criterion_group, criterion_main, Criterion};
use nscaching_serve::{EvictionPolicy, PolicyCache, PolicyKind, ShardedCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct hot keys per trace…
const DISTINCT: usize = 512;
/// …of which the cache holds at most this many.
const CAPACITY: usize = 256;
/// Accesses per trace.
const TRACE_LEN: usize = 16_384;
/// Zipf skew exponent.
const ZIPF_S: f64 = 1.2;
/// Parity shard count.
const SHARDS: usize = 4;

/// Draw Zipf(s)-distributed ranks over `DISTINCT` keys. Deterministic.
struct ZipfRanks {
    cumulative: Vec<f64>,
    total: f64,
    rng: StdRng,
}

impl ZipfRanks {
    fn new(seed: u64) -> Self {
        let cumulative: Vec<f64> = (0..DISTINCT)
            .scan(0.0, |acc, r| {
                *acc += 1.0 / ((r + 1) as f64).powf(ZIPF_S);
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().unwrap();
        Self {
            cumulative,
            total,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next(&mut self) -> usize {
        let u = self.rng.gen::<f64>() * self.total;
        self.cumulative
            .partition_point(|&c| c < u)
            .min(DISTINCT - 1)
    }
}

/// Stationary Zipf traffic: rank r always maps to key r.
fn zipf_trace() -> Vec<u64> {
    let mut ranks = ZipfRanks::new(11);
    (0..TRACE_LEN).map(|_| ranks.next() as u64).collect()
}

/// Zipf traffic polluted by one-pass scans: every quarter, a sweep of 512
/// one-touch keys (disjoint from the hot universe) interleaves with the
/// skewed traffic.
fn scan_trace() -> Vec<u64> {
    let mut ranks = ZipfRanks::new(23);
    let mut trace = Vec::with_capacity(TRACE_LEN + 4 * DISTINCT);
    let mut cold = 1_000_000u64;
    for i in 0..TRACE_LEN {
        trace.push(ranks.next() as u64);
        if i % (TRACE_LEN / 4) == TRACE_LEN / 8 {
            for _ in 0..DISTINCT {
                trace.push(cold);
                cold += 1; // never repeated: the definition of a scan
            }
        }
    }
    trace
}

/// Zipf traffic with popularity drift: the rank→key mapping rotates by 128
/// every quarter of the trace, so each phase's head is the previous phase's
/// mid-tail.
fn shift_trace() -> Vec<u64> {
    let mut ranks = ZipfRanks::new(37);
    (0..TRACE_LEN)
        .map(|i| {
            let phase = i / (TRACE_LEN / 4);
            ((ranks.next() + phase * 128) % DISTINCT) as u64
        })
        .collect()
}

fn traces() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("zipf", zipf_trace()),
        ("scan", scan_trace()),
        ("shift", shift_trace()),
    ]
}

/// Replay a trace through a single-instance policy cache; exact counters.
fn replay_flat(trace: &[u64], policy: PolicyKind) -> (f64, u64) {
    let mut cache: PolicyCache<u64, u64, Box<dyn EvictionPolicy + Send>> =
        PolicyCache::with_policy(CAPACITY, policy.build(CAPACITY));
    for &key in trace {
        if cache.get(&key).is_none() {
            cache.insert(key, key);
        }
    }
    let stats = cache.stats();
    (stats.hit_rate(), stats.evictions)
}

/// Replay a trace with a TinyLFU admission filter in front of the policy
/// (`CacheConfig::admission`): one-touch keys must now out-score the
/// prospective eviction victim's sketch frequency to get in at all.
fn replay_admission(trace: &[u64], policy: PolicyKind) -> (f64, u64) {
    let mut cache: PolicyCache<u64, u64, Box<dyn EvictionPolicy + Send>> =
        PolicyCache::with_policy(CAPACITY, policy.build(CAPACITY)).with_admission();
    for &key in trace {
        if cache.get(&key).is_none() {
            cache.insert(key, key);
        }
    }
    let stats = cache.stats();
    (stats.hit_rate(), stats.rejections)
}

/// Replay a trace through the hash-sharded cache at the same total capacity.
fn replay_sharded(trace: &[u64], policy: PolicyKind) -> f64 {
    let cache: ShardedCache<u64, u64> = ShardedCache::new(CAPACITY, policy, SHARDS);
    for &key in trace {
        if cache.get(&key).is_none() {
            cache.insert(key, key);
        }
    }
    cache.stats().hit_rate()
}

fn bench_replay(c: &mut Criterion) {
    let trace = zipf_trace();
    let mut group = c.benchmark_group("cache_sim");
    group.sample_size(10);
    for policy in PolicyKind::ALL {
        group.bench_function(format!("replay_zipf_{}", policy.name()), |b| {
            b.iter(|| std::hint::black_box(replay_flat(&trace, policy)))
        });
    }
    group.finish();
}

/// The simulator: full (trace × policy) hit-rate table, per-trace winners,
/// and the sharded-parity gate. Records `BENCH_serve.json`.
fn assert_cache_sim(_c: &mut Criterion) {
    let tolerance: f64 = std::env::var("NSC_CACHE_SIM_OK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);

    let mut trace_rows = String::new();
    let mut winners = Vec::new();
    let mut parity_failures = Vec::new();
    for (t, (trace_name, trace)) in traces().iter().enumerate() {
        if t > 0 {
            trace_rows.push_str(",\n");
        }
        let mut policy_rows = String::new();
        let mut best: Option<(PolicyKind, f64)> = None;
        for (p, policy) in PolicyKind::ALL.into_iter().enumerate() {
            let (hit_rate, evictions) = replay_flat(trace, policy);
            let (tinylfu_rate, tinylfu_rejections) = replay_admission(trace, policy);
            let sharded_rate = replay_sharded(trace, policy);
            let delta = (hit_rate - sharded_rate).abs();
            if delta > tolerance {
                parity_failures.push(format!(
                    "{trace_name}/{}: flat {hit_rate:.4} vs {SHARDS}-shard {sharded_rate:.4} \
                     (delta {delta:.4} > {tolerance})",
                    policy.name()
                ));
            }
            if p > 0 {
                policy_rows.push_str(",\n");
            }
            policy_rows.push_str(&format!(
                "      {{ \"policy\": \"{}\", \"hit_rate\": {hit_rate:.4}, \
                 \"evictions\": {evictions}, \"sharded_hit_rate\": {sharded_rate:.4}, \
                 \"tinylfu_hit_rate\": {tinylfu_rate:.4}, \
                 \"tinylfu_rejections\": {tinylfu_rejections} }}",
                policy.name()
            ));
            println!(
                "cache_sim {trace_name:>5} {:>5}: hit rate {:.1}% ({evictions} evictions), \
                 {SHARDS}-shard {:.1}%, +tinylfu {:.1}% ({tinylfu_rejections} rejections)",
                policy.name(),
                hit_rate * 100.0,
                sharded_rate * 100.0,
                tinylfu_rate * 100.0,
            );
            if best.is_none_or(|(_, b)| hit_rate > b) {
                best = Some((policy, hit_rate));
            }
        }
        let (winner, rate) = best.unwrap();
        println!(
            "cache_sim {trace_name:>5} winner: {} ({:.1}%)",
            winner.name(),
            rate * 100.0
        );
        winners.push((*trace_name, winner, rate));
        trace_rows.push_str(&format!(
            "    {{\n      \"trace\": \"{trace_name}\",\n      \"accesses\": {},\n      \
             \"policies\": [\n{policy_rows}\n      ],\n      \"winner\": \"{}\"\n    }}",
            trace.len(),
            winner.name(),
        ));
    }

    let winner_list = winners
        .iter()
        .map(|(t, w, _)| format!("{t}:{}", w.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let section = format!(
        "{{\n  \"workload\": {{\n    \"distinct_keys\": {DISTINCT},\n    \"capacity\": {CAPACITY},\n    \"zipf_exponent\": {ZIPF_S},\n    \"shards\": {SHARDS}\n  }},\n  \"traces\": [\n{trace_rows}\n  ],\n  \"sharded_parity_tolerance\": {tolerance},\n  \"default_policy\": \"slru\",\n  \"note\": \"per-trace winners: {winner_list}. CacheConfig::default() picks SLRU from this table: the highest minimum and mean hit rate across all three shapes (within ~0.2pp of the per-trace winner on zipf and scan, ~1pp on shift), where LFU collapses on shift (stale head pinned by historical counts) and LFUDA gives up ~2pp under scan pollution. The legacy KnowledgeServer::new stays on bit-compatible LRU. tinylfu_* columns replay the same trace with the CacheConfig::admission TinyLFU filter in front of the policy: it pays for itself on scan pollution (one-touch keys are rejected instead of evicting incumbents) and must not collapse on shift (the halving reset decays stale frequency credit). Admission stays off by default. Parity gate NSC_CACHE_SIM_OK is the allowed |flat - sharded| hit-rate delta\"\n}}"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    if let Err(e) = nscaching_bench::update_bench_section(&path, "serve", "cache_sim", &section) {
        eprintln!("could not record BENCH_serve.json at {path:?}: {e}");
    }

    assert!(
        parity_failures.is_empty(),
        "sharded hit rates must match the flat cache (override with NSC_CACHE_SIM_OK):\n{}",
        parity_failures.join("\n")
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_cache_sim, bench_replay
}
criterion_main!(benches);
