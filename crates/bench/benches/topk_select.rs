//! Criterion bench: the serve-path top-k selection kernel — partial
//! selection (`select_nth_unstable_by` introselect + k-prefix sort) against
//! the retained full-sort oracle.
//!
//! Run with `cargo bench -p nscaching-bench --bench topk_select`.
//!
//! This is the cache-*miss* half of the serving latency story: every miss
//! pays one `score_all_into` scan plus one top-k selection over all |E|
//! candidate scores. The old kernel sorted the full index range — O(|E|
//! log |E|) for k ≪ |E|; the partial-selection kernel is O(|E| + k log k)
//! and **bit-identical** (same indices, same order; the comparator is a
//! strict total order, proven by `crates/math/tests/topk_equivalence.rs`).
//!
//! Records into the `topk_miss_path` section of `BENCH_serve.json`:
//!
//! * a (|E|, k) sweep of quickselect-vs-sort wall-clock ratios;
//! * the gated headline (`NSC_TOPK_MIN`, ≥ 3× locally at the serving design
//!   point |E| = 20 000, k = 10; CI relaxes it on shared runners like the
//!   other bench gates).
//!
//! Every measured pass also re-asserts bit-identical outputs on the bench's
//! own inputs — the speed claim and the equivalence claim ride the same data.

use criterion::{criterion_group, criterion_main, Criterion};
use nscaching_math::{top_k_indices_into, top_k_indices_sort_into};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// The serving design point: |E| entities scored per miss, k answers kept.
const HEADLINE_N: usize = 20_000;
const HEADLINE_K: usize = 10;
/// Sweep grid recorded alongside the headline.
const SWEEP: [(usize, usize); 6] = [
    (2_000, 10),
    (20_000, 1),
    (20_000, 10),
    (20_000, 100),
    (200_000, 10),
    (20_000, 19_999),
];

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

/// Best-of-`samples` seconds for `passes` kernel invocations.
fn best_seconds(samples: usize, passes: usize, mut call: impl FnMut()) -> f64 {
    call(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..passes {
            call();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measured speedup of partial selection over the full sort at one (n, k),
/// asserting bit-identical output first.
fn speedup_at(n: usize, k: usize, samples: usize) -> f64 {
    let xs = scores(n, 7 + n as u64 + k as u64);
    let mut select = Vec::new();
    let mut sort = Vec::new();
    top_k_indices_into(&xs, k, &mut select);
    top_k_indices_sort_into(&xs, k, &mut sort);
    assert_eq!(
        select, sort,
        "partial selection must be bit-identical to the sort oracle at n={n} k={k}"
    );
    // Scale pass counts so every measurement covers comparable work.
    let passes = (2_000_000 / n).max(1);
    let secs_select = best_seconds(samples, passes, || {
        top_k_indices_into(black_box(&xs), black_box(k), &mut select);
        black_box(select.len());
    });
    let secs_sort = best_seconds(samples, passes, || {
        top_k_indices_sort_into(black_box(&xs), black_box(k), &mut sort);
        black_box(sort.len());
    });
    secs_sort / secs_select
}

fn bench_kernels(c: &mut Criterion) {
    let xs = scores(HEADLINE_N, 42);
    let mut out = Vec::new();
    let mut group = c.benchmark_group("topk_select");
    group.sample_size(20);
    group.bench_function("partial_select_20k_k10", |b| {
        b.iter(|| {
            top_k_indices_into(black_box(&xs), black_box(HEADLINE_K), &mut out);
            black_box(out.len());
        })
    });
    group.bench_function("full_sort_20k_k10", |b| {
        b.iter(|| {
            top_k_indices_sort_into(black_box(&xs), black_box(HEADLINE_K), &mut out);
            black_box(out.len());
        })
    });
    group.finish();
}

/// Acceptance gate: partial selection ≥ `NSC_TOPK_MIN`× the full sort at the
/// serving design point. Records `BENCH_serve.json`.
fn assert_topk_select(_c: &mut Criterion) {
    let samples = 5;
    let sweep: Vec<(usize, usize, f64)> = SWEEP
        .iter()
        .map(|&(n, k)| (n, k, speedup_at(n, k, samples)))
        .collect();
    let headline = sweep
        .iter()
        .find(|&&(n, k, _)| n == HEADLINE_N && k == HEADLINE_K)
        .map(|&(_, _, s)| s)
        .expect("headline point is in the sweep");
    let min_speedup: f64 = std::env::var("NSC_TOPK_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    let mut rows = String::new();
    for (i, (n, k, s)) in sweep.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"num_candidates\": {n}, \"k\": {k}, \"select_over_sort_speedup\": {s:.2} }}"
        ));
        println!("topk_select n={n} k={k}: partial selection {s:.2}x the full sort");
    }
    println!(
        "topk_select headline |E|={HEADLINE_N} k={HEADLINE_K}: {headline:.2}x (min {min_speedup}x)"
    );

    let section = format!(
        "{{\n  \"kernel\": \"select_nth_unstable_by introselect + k-prefix sort vs full sort_unstable_by\",\n  \"sweep\": [\n{rows}\n  ],\n  \"headline\": {{\n    \"num_candidates\": {HEADLINE_N},\n    \"k\": {HEADLINE_K},\n    \"select_over_sort_speedup\": {headline:.2},\n    \"min_required_speedup\": {min_speedup}\n  }},\n  \"note\": \"cache-miss half of the serve-path latency campaign: every top-k miss pays one selection over all |E| scores; outputs are asserted bit-identical to the retained sort oracle on the bench inputs, and proptested against it in crates/math/tests/topk_equivalence.rs. Gate NSC_TOPK_MIN (relaxed in CI; k ~ |E| rows are expected near 1x — there is nothing to skip)\"\n}}"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "serve", "topk_miss_path", &section)
    {
        eprintln!("could not record BENCH_serve.json at {path:?}: {e}");
    }

    assert!(
        headline >= min_speedup,
        "partial selection must be ≥{min_speedup}x the full sort at |E|={HEADLINE_N} k={HEADLINE_K} \
         (got {headline:.2}x; override with NSC_TOPK_MIN)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_topk_select, bench_kernels
}
criterion_main!(benches);
