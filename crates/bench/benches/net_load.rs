//! Criterion bench: closed-loop load generation against the TCP front door
//! (`nscaching_net`), end to end through real sockets on loopback.
//!
//! Run with `cargo bench -p nscaching-bench --bench net_load`.
//!
//! Measures and records into the `net_load` section of `BENCH_net.json` at
//! the workspace root:
//!
//! * **moderate phase** — a comfortably provisioned server under 4
//!   closed-loop clients issuing a mixed request stream (ping / top-k /
//!   score / rank). Records p50/p99 round-trip latency and aggregate QPS.
//!   Gated: p99 ≤ `NSC_NET_P99_MAX` milliseconds and shed rate ≤
//!   `NSC_NET_SHED_OK` — a healthy server must answer fast and shed
//!   (essentially) nothing;
//! * **saturation sweep** — the same server under 1/2/4/8 closed-loop
//!   clients, recording QPS at each concurrency (recorded, not gated — the
//!   knee depends on host parallelism);
//! * **overload phase** — a deliberately tiny server (1 worker, 2-slot
//!   queue) hammered with expensive uncacheable queries and no client
//!   retries. Records the shed rate and the degradation-ladder occupancy,
//!   demonstrating that saturation surfaces as typed `Overloaded`
//!   rejections and degraded service, not latency collapse.
//!
//! The response ledger (`decoded + protocol_errors == written +
//! write_failures`) is hard-asserted after every phase at any gate level.

use criterion::{criterion_group, criterion_main, Criterion};
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_net::client::{ClientConfig, ClientError, NetClient};
use nscaching_net::server::{NetServer, NetServerConfig, NetStatsSnapshot};
use nscaching_net::wire::{ErrorCode, Request};
use nscaching_serve::{KnowledgeServer, TopKQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const DIM: usize = 32;
const ENTITIES: usize = 2_000;
const RELATIONS: usize = 16;
/// Calls per client in the moderate phase.
const MODERATE_CALLS: usize = 300;
/// Closed-loop clients in the moderate phase.
const MODERATE_CLIENTS: usize = 4;
/// Calls per client at each step of the saturation sweep.
const SWEEP_CALLS: usize = 150;

fn engine() -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(DIM)
            .with_seed(7),
        ENTITIES,
        RELATIONS,
    );
    KnowledgeServer::new(model, 256)
}

fn provisioned_config() -> NetServerConfig {
    NetServerConfig {
        workers: 2,
        queue_depth: 64,
        ..NetServerConfig::default()
    }
}

/// The moderate-phase request mix: mostly top-k (the serving workload the
/// paper's cache targets), with score/rank/ping traffic mixed in. All ids in
/// range; k small enough that the LRU sees realistic reuse.
fn request_for(rng: &mut StdRng) -> Request {
    let entity = rng.gen_range(0u32..ENTITIES as u32);
    let relation = rng.gen_range(0u32..RELATIONS as u32);
    match rng.gen_range(0u32..10) {
        0 => Request::Ping,
        1..=6 => Request::TopK(TopKQuery::tails(entity, relation, rng.gen_range(1u32..12))),
        7..=8 => Request::Score {
            head: entity,
            relation,
            tail: (entity + 1) % ENTITIES as u32,
        },
        _ => Request::Rank {
            head: entity,
            relation,
            tail: (entity + 3) % ENTITIES as u32,
            side: nscaching_kg::CorruptionSide::Tail,
        },
    }
}

/// One closed-loop client: issue `calls` requests back to back, recording
/// per-call round-trip latency. Returns (latencies_us, served, shed, other).
fn client_loop(
    addr: SocketAddr,
    calls: usize,
    seed: u64,
    max_attempts: u32,
) -> (Vec<u64>, u64, u64, u64) {
    let mut client = NetClient::new(
        addr,
        ClientConfig {
            max_attempts,
            read_timeout: Duration::from_secs(10),
            seed,
            ..ClientConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10AD);
    let mut latencies = Vec::with_capacity(calls);
    let (mut served, mut shed, mut other) = (0u64, 0u64, 0u64);
    for _ in 0..calls {
        let request = request_for(&mut rng);
        let start = Instant::now();
        match client.call(&request) {
            Ok(reply) => {
                black_box(&reply.answer);
                served += 1;
            }
            Err(ClientError::Server {
                code: ErrorCode::Overloaded | ErrorCode::DeadlineExceeded,
                ..
            }) => shed += 1,
            Err(_) => other += 1,
        }
        latencies.push(start.elapsed().as_micros() as u64);
    }
    (latencies, served, shed, other)
}

/// Drive `clients` closed-loop clients for `calls` each against `addr`.
/// Returns (all_latencies_us_sorted, served, shed, other, wall_seconds).
fn drive(
    addr: SocketAddr,
    clients: usize,
    calls: usize,
    seed_base: u64,
    max_attempts: u32,
) -> (Vec<u64>, u64, u64, u64, f64) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || client_loop(addr, calls, seed_base + c as u64, max_attempts))
        })
        .collect();
    let (mut latencies, mut served, mut shed, mut other) = (Vec::new(), 0u64, 0u64, 0u64);
    for handle in handles {
        let (l, s, d, o) = handle.join().expect("load client must not panic");
        latencies.extend(l);
        served += s;
        shed += d;
        other += o;
    }
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (latencies, served, shed, other, wall)
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

fn assert_ledger(stats: &NetStatsSnapshot, phase: &str) {
    assert_eq!(
        stats.decoded + stats.protocol_errors,
        stats.written + stats.write_failures,
        "{phase}: response ledger out of balance: {stats:?}"
    );
}

/// Criterion micro-bench: single-client round-trip time for a ping and a
/// cached top-k over a live socket — the protocol + syscall floor under the
/// closed-loop numbers.
fn bench_round_trip(c: &mut Criterion) {
    let server = NetServer::bind("127.0.0.1:0", engine(), provisioned_config()).unwrap();
    let addr = server.addr();
    let mut client = NetClient::new(addr, ClientConfig::default());
    let mut group = c.benchmark_group("net_rtt");
    group.sample_size(20);
    group.bench_function("ping", |b| {
        b.iter(|| black_box(client.call(&Request::Ping).unwrap()))
    });
    let hot = Request::TopK(TopKQuery::tails(3, 1, 10));
    client.call(&hot).unwrap(); // warm the LRU entry
    group.bench_function("warm_topk", |b| {
        b.iter(|| black_box(client.call(&hot).unwrap()))
    });
    group.finish();
    server.shutdown();
}

/// Acceptance gates: moderate-phase p99 ≤ `NSC_NET_P99_MAX` ms and shed rate
/// ≤ `NSC_NET_SHED_OK`; ledger balance at every phase. Records
/// `BENCH_net.json`.
fn assert_net_load(_c: &mut Criterion) {
    let p99_max_ms: f64 = std::env::var("NSC_NET_P99_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    let shed_ok: f64 = std::env::var("NSC_NET_SHED_OK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);

    // --- Moderate phase: comfortably provisioned, mixed stream.
    let (p50_ms, p99_ms, moderate_qps, moderate_shed_rate) = {
        let server = NetServer::bind("127.0.0.1:0", engine(), provisioned_config()).unwrap();
        let addr = server.addr();
        // Warm-up pass so connection setup and cold caches stay out of the
        // measured distribution.
        drive(addr, MODERATE_CLIENTS, 40, 0xAAAA, 4);
        let (latencies, served, shed, other, wall) =
            drive(addr, MODERATE_CLIENTS, MODERATE_CALLS, 0x0D0D, 4);
        let stats = server.shutdown();
        assert_ledger(&stats, "moderate");
        let total = served + shed + other;
        assert_eq!(total, (MODERATE_CLIENTS * MODERATE_CALLS) as u64);
        assert_eq!(other, 0, "moderate phase must see only typed outcomes");
        (
            percentile_us(&latencies, 0.50) / 1_000.0,
            percentile_us(&latencies, 0.99) / 1_000.0,
            total as f64 / wall,
            shed as f64 / total as f64,
        )
    };

    // --- Saturation sweep: QPS at 1/2/4/8 closed-loop clients.
    let sweep: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&clients| {
            let server = NetServer::bind("127.0.0.1:0", engine(), provisioned_config()).unwrap();
            let addr = server.addr();
            drive(addr, clients, 20, 0xBBBB, 4); // warm-up
            let (_, served, shed, other, wall) = drive(addr, clients, SWEEP_CALLS, 0x5EE9, 4);
            let stats = server.shutdown();
            assert_ledger(&stats, "sweep");
            (clients, (served + shed + other) as f64 / wall)
        })
        .collect();
    let peak_qps = sweep.iter().map(|(_, q)| *q).fold(0.0f64, f64::max);

    // --- Overload phase: tiny server, expensive uncacheable queries, no
    //     retries. Saturation must show up as typed shedding + degradation.
    let (overload_shed_rate, overload_stats) = {
        let config = NetServerConfig {
            workers: 1,
            queue_depth: 2,
            ..NetServerConfig::default()
        };
        let model = build_model(
            &ModelConfig::new(ModelKind::TransE)
                .with_dim(64)
                .with_seed(1),
            20_000,
            4,
        );
        let server =
            NetServer::bind("127.0.0.1:0", KnowledgeServer::new(model, 8), config).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8u64)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = NetClient::new(
                        addr,
                        ClientConfig {
                            max_attempts: 1,
                            read_timeout: Duration::from_secs(10),
                            ..ClientConfig::default()
                        },
                    );
                    let mut rng = StdRng::seed_from_u64(c);
                    let (mut served, mut shed) = (0u64, 0u64);
                    for _ in 0..40 {
                        // Random k defeats the LRU: every admitted request
                        // pays a full 20k-entity scan.
                        let query = TopKQuery::tails(
                            rng.gen_range(0u32..20_000),
                            rng.gen_range(0u32..4),
                            rng.gen_range(1u32..200),
                        );
                        match client.call(&Request::TopK(query)) {
                            Ok(_) => served += 1,
                            Err(_) => shed += 1,
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        let (mut served, mut shed) = (0u64, 0u64);
        for handle in handles {
            let (s, d) = handle.join().expect("overload client must not panic");
            served += s;
            shed += d;
        }
        let stats = server.shutdown();
        assert_ledger(&stats, "overload");
        (shed as f64 / (served + shed) as f64, stats)
    };

    println!(
        "net_load TransE d={DIM} |E|={ENTITIES}: moderate({MODERATE_CLIENTS} clients) \
         p50 {p50_ms:.2}ms p99 {p99_ms:.2}ms {moderate_qps:.0} q/s shed {:.2}% \
         (max p99 {p99_max_ms}ms, max shed {shed_ok}); sweep {:?} peak {peak_qps:.0} q/s; \
         overload shed {:.1}% (server shed {} deadline {} degraded_l1 {} l2 {})",
        moderate_shed_rate * 100.0,
        sweep
            .iter()
            .map(|(c, q)| format!("{c}:{q:.0}"))
            .collect::<Vec<_>>(),
        overload_shed_rate * 100.0,
        overload_stats.shed,
        overload_stats.deadline_exceeded,
        overload_stats.degraded_l1,
        overload_stats.degraded_l2,
    );

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(c, q)| format!("{{ \"clients\": {c}, \"qps\": {q:.0} }}"))
        .collect();
    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransE\",\n    \"dim\": {DIM},\n    \"num_entities\": {ENTITIES},\n    \"num_relations\": {RELATIONS},\n    \"transport\": \"tcp loopback, length-prefixed frames\"\n  }},\n  \"moderate\": {{\n    \"clients\": {MODERATE_CLIENTS},\n    \"calls\": {},\n    \"p50_ms\": {p50_ms:.3},\n    \"p99_ms\": {p99_ms:.3},\n    \"qps\": {moderate_qps:.0},\n    \"shed_rate\": {moderate_shed_rate:.4},\n    \"max_p99_ms\": {p99_max_ms},\n    \"max_shed_rate\": {shed_ok}\n  }},\n  \"saturation_sweep\": [\n    {}\n  ],\n  \"peak_qps\": {peak_qps:.0},\n  \"overload\": {{\n    \"workers\": 1,\n    \"queue_depth\": 2,\n    \"shed_rate\": {overload_shed_rate:.4},\n    \"server_shed\": {},\n    \"server_deadline_exceeded\": {},\n    \"degraded_l1\": {},\n    \"degraded_l2\": {}\n  }},\n  \"note\": \"closed-loop loopback load; the p99/shed gates (NSC_NET_P99_MAX, NSC_NET_SHED_OK) bound the healthy-server envelope, the overload phase documents typed shedding + the degradation ladder under saturation\"\n}}",
        MODERATE_CLIENTS * MODERATE_CALLS,
        sweep_json.join(",\n    "),
        overload_stats.shed,
        overload_stats.deadline_exceeded,
        overload_stats.degraded_l1,
        overload_stats.degraded_l2,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_net.json");
    if let Err(e) = nscaching_bench::update_bench_section(&path, "net", "net_load", &section) {
        eprintln!("could not record BENCH_net.json at {path:?}: {e}");
    }

    assert!(
        p99_ms <= p99_max_ms,
        "moderate-phase p99 {p99_ms:.2}ms exceeds {p99_max_ms}ms \
         (override with NSC_NET_P99_MAX)"
    );
    assert!(
        moderate_shed_rate <= shed_ok,
        "moderate-phase shed rate {moderate_shed_rate:.4} exceeds {shed_ok} \
         (override with NSC_NET_SHED_OK)"
    );
    // The overload phase exists to prove admission control engages; a tiny
    // server that never sheds under 8 hammering clients is a broken ladder.
    assert!(
        overload_shed_rate > 0.0,
        "overload phase produced no shedding: {overload_stats:?}"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_net_load, bench_round_trip
}
criterion_main!(benches);
