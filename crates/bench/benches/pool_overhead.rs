//! Criterion bench: dispatch overhead of the persistent worker-pool engine.
//!
//! Run with `cargo bench -p nscaching-bench --bench pool_overhead`.
//!
//! Two numbers from the ISSUE's acceptance bar, both recorded into the
//! `pool_overhead` section of `BENCH_pool.json` at the workspace root:
//!
//! * **1-shard pool overhead** — the pool engine forced onto a single shard
//!   (`TrainRuntime::Pool`) against the inline sequential engine on the same
//!   workload shape. The difference is dominated by runtime cost — batch
//!   partitioning, one channel round-trip per batch, the ordered merge —
//!   but is not a *pure* dispatch measure: the two engines run different
//!   pipelines (shard vs master RNG streams), so they draw different
//!   negatives and skip different zero-loss pairs. Per-positive work is
//!   trajectory-independent to first order (the same `N1 + N2` candidates
//!   are scored per refresh regardless of which entities they are), which
//!   is what makes the comparison meaningful; best-of-N sampling absorbs
//!   the residual variance. Gated at ≤ 2% (`NSC_POOL_OVERHEAD_MAX`,
//!   fractional; CI relaxes it on shared runners the same way
//!   `NSC_PARALLEL_SPEEDUP_MIN` relaxes the speedup gate).
//! * **4-shard ratio on narrow hosts** — sequential seconds / 4-shard pool
//!   seconds. PR 2's scoped engine measured 0.95× on this 1-core container
//!   (per-batch spawn/join burned ~5% of the epoch); the pool reclaims that
//!   spawn cost, and `NSC_POOL_RATIO4_MIN` (default 0.95 — "no worse than
//!   the scoped engine"; the headline target is ≥ 0.99) gates against
//!   regression. On multi-core hosts this ratio becomes a genuine speedup
//!   and the `train_epoch_parallel` bench gates it much higher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{TrainConfig, TrainData, TrainRuntime, Trainer};
use std::hint::black_box;
use std::time::Instant;

/// Same FB15K-shaped workload as `train_epoch_parallel`, so the recorded
/// ratios are directly comparable with `BENCH_parallel.json`.
fn dataset() -> Dataset {
    let mut config = GeneratorConfig::small("bench-pool-fb15k");
    config.num_entities = 1_500;
    config.num_relations = 120;
    config.num_train = 8_000;
    config.num_valid = 200;
    config.num_test = 200;
    config.seed = 1;
    nscaching_datagen::generate(&config).expect("generation succeeds")
}

fn trainer(data: &TrainData, dataset: &Dataset, runtime: TrainRuntime, shards: usize) -> Trainer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(64)
            .with_seed(3),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        dataset,
        7,
    );
    let config = TrainConfig::new(0)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(3.0)
        .with_seed(11)
        .with_shards(shards)
        .with_runtime(runtime);
    Trainer::new(model, sampler, data, config)
}

/// Best-of-N epoch seconds after a warm-up epoch (pool spawned, caches
/// materialised, scratch at high-water marks).
fn epoch_seconds(
    data: &TrainData,
    dataset: &Dataset,
    runtime: TrainRuntime,
    shards: usize,
    samples: usize,
) -> f64 {
    let mut t = trainer(data, dataset, runtime, shards);
    t.train_epoch(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        black_box(t.train_epoch());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_engines(c: &mut Criterion) {
    let dataset = dataset();
    let data = TrainData::from_dataset(&dataset);
    let mut group = c.benchmark_group("pool_epoch");
    group.sample_size(10);
    for (label, runtime, shards) in [
        ("sequential", TrainRuntime::Sequential, 1),
        ("pool_1", TrainRuntime::Pool, 1),
        ("pool_4", TrainRuntime::Pool, 4),
    ] {
        let mut t = trainer(&data, &dataset, runtime, shards);
        t.train_epoch(); // warm-up
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(t.train_epoch()))
        });
    }
    group.finish();
}

/// The acceptance gates: 1-shard pool overhead ≤ `NSC_POOL_OVERHEAD_MAX`
/// and 4-shard ratio ≥ `NSC_POOL_RATIO4_MIN`, recorded in `BENCH_pool.json`.
fn assert_pool_overhead(_c: &mut Criterion) {
    let dataset = dataset();
    let data = TrainData::from_dataset(&dataset);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let samples = 5;
    let secs_seq = epoch_seconds(&data, &dataset, TrainRuntime::Sequential, 1, samples);
    let secs_pool_1 = epoch_seconds(&data, &dataset, TrainRuntime::Pool, 1, samples);
    let secs_pool_4 = epoch_seconds(&data, &dataset, TrainRuntime::Pool, 4, samples);
    let overhead_1 = secs_pool_1 / secs_seq - 1.0;
    let ratio_4 = secs_seq / secs_pool_4;

    let max_overhead: f64 = std::env::var("NSC_POOL_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let min_ratio_4: f64 = std::env::var("NSC_POOL_RATIO4_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);

    println!(
        "pool_overhead TransE d=64 NSCaching(50,50) |train|={}: \
         sequential {:.1} ms, pool@1 {:.1} ms ({:+.2}% overhead, max {:.1}%), \
         pool@4 {:.1} ms ({ratio_4:.3}x vs sequential, min {min_ratio_4}x) on {cores} core(s)",
        dataset.train.len(),
        secs_seq * 1e3,
        secs_pool_1 * 1e3,
        overhead_1 * 100.0,
        max_overhead * 100.0,
        secs_pool_4 * 1e3,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransE\",\n    \"dim\": 64,\n    \"sampler\": \"NSCaching(N1=50, N2=50)\",\n    \"num_entities\": {},\n    \"num_train\": {},\n    \"batch_size\": 256\n  }},\n  \"cores\": {cores},\n  \"epoch_seconds\": {{\n    \"sequential\": {secs_seq:.6},\n    \"pool_1_shard\": {secs_pool_1:.6},\n    \"pool_4_shards\": {secs_pool_4:.6}\n  }},\n  \"pool_1_shard_overhead\": {overhead_1:.4},\n  \"max_allowed_overhead\": {max_overhead},\n  \"ratio_4_shards_vs_sequential\": {ratio_4:.3},\n  \"min_required_ratio_4\": {min_ratio_4},\n  \"note\": \"pool@1 vs sequential isolates the persistent runtime's dispatch cost (<=2% gate, NSC_POOL_OVERHEAD_MAX); ratio_4 on a 1-core host was 0.95x under the retired per-batch thread::scope engine and must not regress (NSC_POOL_RATIO4_MIN)\"\n}}",
        dataset.num_entities(),
        dataset.train.len(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pool.json");
    if let Err(e) = nscaching_bench::update_bench_section(&path, "pool", "pool_overhead", &section)
    {
        eprintln!("could not record BENCH_pool.json at {path:?}: {e}");
    }

    assert!(
        overhead_1 <= max_overhead,
        "1-shard pool engine overhead must be ≤{:.1}% of the sequential epoch \
         (got {:+.2}%; override with NSC_POOL_OVERHEAD_MAX)",
        max_overhead * 100.0,
        overhead_1 * 100.0,
    );
    assert!(
        ratio_4 >= min_ratio_4,
        "4-shard pool epoch must reach ≥{min_ratio_4}x the sequential epoch \
         (got {ratio_4:.3}x on {cores} cores; override with NSC_POOL_RATIO4_MIN)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_pool_overhead, bench_engines
}
criterion_main!(benches);
