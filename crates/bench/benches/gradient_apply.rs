//! Criterion bench: batched gradient-cycle throughput of the slab-backed
//! `GradientArena` engine vs the retired `HashMap` engine.
//!
//! Run with `cargo bench -p nscaching-bench --bench gradient_apply`.
//!
//! The measured unit is one **batch gradient cycle** — the per-mini-batch
//! gradient work of the sharded trainer (Algorithm 2's steps 9–10 plus the
//! Figure 10 instrumentation), with the model-side scoring/emission math and
//! the constraint projection excluded because they are engine-independent:
//!
//! 1. accumulate the batch's sparse row gradients into 4 per-shard sinks
//!    (TransE-shaped emission: head/relation/tail per example),
//! 2. merge the shards into the batch sink in ascending shard order,
//! 3. take the gradient norm (`record_batch_gradient`),
//! 4. apply one optimizer step.
//!
//! Workload: d = 128, 512 examples per batch touching 1024 distinct entity
//! rows + 64 relation rows. Numbers recorded into `BENCH_gradients.json` at
//! the workspace root:
//!
//! * **Adam-cycle speedup** — the gated headline (`NSC_GRAD_APPLY_MIN`,
//!   ≥ 2× locally; CI relaxes it on shared runners like the other bench
//!   gates). Adam is the paper's optimizer, and the one the trainer builds by
//!   default; its per-row state is where the engines differ most (dense
//!   moment slabs walked in sorted row order vs a `HashMap` lookup plus two
//!   scattered `Vec`s per row).
//! * **SGD-cycle speedup** — recorded, not gated. SGD has no state, so its
//!   cycle is dominated by the accumulate/merge plumbing (per-row heap
//!   churn + SipHash on every add vs slab writes).
//!
//! The bench also asserts the tentpole's allocation contract: after warm-up,
//! a steady-state arena cycle performs **zero heap allocations** (counted by
//! a wrapping global allocator) — and, as a sanity check, that both engines
//! land on bit-identical model parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching_models::{
    build_model, GradientArena, GradientBuffer, GradientSink, KgeModel, ModelConfig, ModelKind,
    TableId,
};
use nscaching_optim::{Adam, Optimizer, Sgd};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Reference Adam row state: first moments, second moments, step count.
type AdamRowState = (Vec<f64>, Vec<f64>, u64);

struct CountingAllocator;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const DIM: usize = 128;
const EXAMPLES: usize = 512;
const ENTITIES: usize = 2 * EXAMPLES; // every example touches 2 fresh rows
const RELATIONS: usize = 64;
const SHARDS: usize = 4;

const ENTITY_TABLE: TableId = 0;
const RELATION_TABLE: TableId = 1;

/// One batch's sparse emission, precomputed so the measured cycle is pure
/// gradient plumbing (the trainer's model-side emission math costs the same
/// under either engine and is measured by the training benches).
struct Workload {
    /// Per-example gradient direction, `DIM` values each.
    values: Vec<Vec<f64>>,
}

impl Workload {
    fn new() -> Self {
        // Deterministic pseudo-random directions in (-1, 1); no RNG crate
        // needed for a fixed workload.
        let values = (0..EXAMPLES)
            .map(|i| {
                (0..DIM)
                    .map(|j| ((i * 31 + j * 17 + 5) % 97) as f64 / 48.5 - 1.0)
                    .collect()
            })
            .collect();
        Self { values }
    }

    /// TransE-shaped emission — `(−v, −v, +v)` on (head, relation, tail) —
    /// for the examples of one shard (round-robin split, like a ragged batch
    /// partition).
    fn emit_shard(&self, sink: &mut dyn GradientSink, shard: usize) {
        let mut i = shard;
        while i < EXAMPLES {
            let v = &self.values[i];
            sink.add(ENTITY_TABLE, 2 * i, v, -1.0);
            sink.add(RELATION_TABLE, i % RELATIONS, v, -1.0);
            sink.add(ENTITY_TABLE, 2 * i + 1, v, 1.0);
            i += SHARDS;
        }
    }

    fn touched_rows(&self) -> usize {
        ENTITIES + RELATIONS
    }
}

fn model() -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(DIM)
            .with_seed(3),
        ENTITIES,
        RELATIONS,
    )
}

/// The retired `HashMap`-engine optimizers, verbatim (stateless SGD and
/// per-row-state lazy Adam over `GradientBuffer`) — the bench baseline.
enum HashMapOptimizer {
    Sgd,
    Adam {
        state: HashMap<(TableId, usize), AdamRowState>,
    },
}

impl HashMapOptimizer {
    fn step(&mut self, model: &mut dyn KgeModel, grads: &GradientBuffer) -> Vec<(TableId, usize)> {
        let lr = 0.01;
        let mut tables = model.tables_mut();
        let mut touched = Vec::with_capacity(grads.len());
        match self {
            HashMapOptimizer::Sgd => {
                for (&(table, row), grad) in grads.iter() {
                    let params = tables[table].row_mut(row);
                    for (p, g) in params.iter_mut().zip(grad) {
                        *p -= lr * g;
                    }
                    touched.push((table, row));
                }
            }
            HashMapOptimizer::Adam { state } => {
                let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
                for (&(table, row), grad) in grads.iter() {
                    let (m, v, t) = state
                        .entry((table, row))
                        .or_insert_with(|| (vec![0.0; grad.len()], vec![0.0; grad.len()], 0));
                    *t += 1;
                    let bias1 = 1.0 - b1.powi(*t as i32);
                    let bias2 = 1.0 - b2.powi(*t as i32);
                    let params = tables[table].row_mut(row);
                    for i in 0..grad.len() {
                        let g = grad[i];
                        m[i] = b1 * m[i] + (1.0 - b1) * g;
                        v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                        params[i] -= lr * (m[i] / bias1) / ((v[i] / bias2).sqrt() + eps);
                    }
                    touched.push((table, row));
                }
            }
        }
        touched
    }
}

/// Reused buffers of one `HashMap`-engine pipeline.
struct HashMapPipeline {
    shards: Vec<GradientBuffer>,
    merged: GradientBuffer,
    opt: HashMapOptimizer,
}

impl HashMapPipeline {
    fn new(opt: HashMapOptimizer) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| GradientBuffer::new()).collect(),
            merged: GradientBuffer::new(),
            opt,
        }
    }

    /// One batch gradient cycle on the retired engine: per-shard accumulate,
    /// ascending-shard-order merge, norm, optimizer step. Returns the touched
    /// rows (consumed by the constraints stage outside the timed cycle).
    fn cycle(&mut self, workload: &Workload, model: &mut dyn KgeModel) -> Vec<(TableId, usize)> {
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.clear();
            workload.emit_shard(shard, s);
        }
        self.merged.clear();
        for shard in &self.shards {
            self.merged.merge(shard);
        }
        black_box(self.merged.norm());
        self.opt.step(model, &self.merged)
    }
}

/// Reused buffers of one arena-engine pipeline.
struct ArenaPipeline {
    shards: Vec<GradientArena>,
    merged: GradientArena,
    opt: Box<dyn Optimizer>,
}

impl ArenaPipeline {
    fn new(opt: Box<dyn Optimizer>) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| GradientArena::new()).collect(),
            merged: GradientArena::new(),
            opt,
        }
    }

    /// One batch gradient cycle on the arena engine (same stages).
    fn cycle(&mut self, workload: &Workload, model: &mut dyn KgeModel) {
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.clear();
            workload.emit_shard(shard, s);
        }
        self.merged.clear();
        for shard in self.shards.iter_mut() {
            self.merged.merge(shard);
        }
        black_box(self.merged.norm());
        self.opt.step(model, &mut self.merged);
    }
}

/// Best-of-`samples` seconds per cycle over `rounds`-cycle batches, after one
/// warm-up cycle (high-water marks, optimizer state, map capacities).
fn best_seconds(samples: usize, rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..rounds {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best / rounds as f64
}

fn bench_cycles(c: &mut Criterion) {
    let workload = Workload::new();
    let mut group = c.benchmark_group("gradient_cycle");
    group.sample_size(20);

    {
        let mut m = model();
        let mut pipe = HashMapPipeline::new(HashMapOptimizer::Sgd);
        group.bench_function(BenchmarkId::from_parameter("sgd_hashmap"), |b| {
            b.iter(|| pipe.cycle(&workload, black_box(m.as_mut())))
        });
    }
    {
        let mut m = model();
        let mut pipe = ArenaPipeline::new(Box::new(Sgd::new(0.01)));
        group.bench_function(BenchmarkId::from_parameter("sgd_arena"), |b| {
            b.iter(|| pipe.cycle(&workload, black_box(m.as_mut())))
        });
    }
    {
        let mut m = model();
        let mut pipe = HashMapPipeline::new(HashMapOptimizer::Adam {
            state: HashMap::new(),
        });
        group.bench_function(BenchmarkId::from_parameter("adam_hashmap"), |b| {
            b.iter(|| pipe.cycle(&workload, black_box(m.as_mut())))
        });
    }
    {
        let mut m = model();
        let mut opt = Adam::new(0.01);
        opt.bind(m.as_ref());
        let mut pipe = ArenaPipeline::new(Box::new(opt));
        group.bench_function(BenchmarkId::from_parameter("adam_arena"), |b| {
            b.iter(|| pipe.cycle(&workload, black_box(m.as_mut())))
        });
    }
    group.finish();
}

/// The acceptance gates: Adam-cycle speedup ≥ `NSC_GRAD_APPLY_MIN`, zero
/// steady-state allocations, bit-identical results. Records
/// `BENCH_gradients.json`.
fn assert_gradient_apply(_c: &mut Criterion) {
    let workload = Workload::new();
    let (samples, rounds) = (7, 40);

    // --- Engine equivalence sanity: same workload (constraints included,
    //     like the trainer), bit-identical tables after several cycles.
    {
        let mut arena_model = model();
        let mut hashmap_model = model();
        let mut arena_opt = Adam::new(0.01);
        arena_opt.bind(arena_model.as_ref());
        let mut arena_pipe = ArenaPipeline::new(Box::new(arena_opt));
        let mut hashmap_pipe = HashMapPipeline::new(HashMapOptimizer::Adam {
            state: HashMap::new(),
        });
        for _ in 0..3 {
            arena_pipe.cycle(&workload, arena_model.as_mut());
            arena_model.apply_constraints(arena_pipe.merged.touched());
            let touched = hashmap_pipe.cycle(&workload, hashmap_model.as_mut());
            hashmap_model.apply_constraints(&touched);
        }
        for (a, b) in arena_model.tables().iter().zip(hashmap_model.tables()) {
            assert!(
                a.data()
                    .iter()
                    .zip(b.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "engines diverged on table {}",
                a.name()
            );
        }
    }

    // --- Steady-state allocation count of the arena cycle (plus the
    //     constraints stage, which reads the arena's touched list).
    let allocations = {
        let mut m = model();
        let mut opt = Adam::new(0.01);
        opt.bind(m.as_ref());
        let mut pipe = ArenaPipeline::new(Box::new(opt));
        for _ in 0..3 {
            pipe.cycle(&workload, m.as_mut());
            m.apply_constraints(pipe.merged.touched());
        }
        let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
        for _ in 0..10 {
            pipe.cycle(&workload, m.as_mut());
            m.apply_constraints(pipe.merged.touched());
        }
        ALLOCATION_COUNT.load(Ordering::Relaxed) - before
    };

    // --- Timed cycles.
    let secs_sgd_hashmap = {
        let mut m = model();
        let mut pipe = HashMapPipeline::new(HashMapOptimizer::Sgd);
        best_seconds(samples, rounds, || {
            black_box(pipe.cycle(&workload, m.as_mut()));
        })
    };
    let secs_sgd_arena = {
        let mut m = model();
        let mut pipe = ArenaPipeline::new(Box::new(Sgd::new(0.01)));
        best_seconds(samples, rounds, || pipe.cycle(&workload, m.as_mut()))
    };
    let secs_adam_hashmap = {
        let mut m = model();
        let mut pipe = HashMapPipeline::new(HashMapOptimizer::Adam {
            state: HashMap::new(),
        });
        best_seconds(samples, rounds, || {
            black_box(pipe.cycle(&workload, m.as_mut()));
        })
    };
    let secs_adam_arena = {
        let mut m = model();
        let mut opt = Adam::new(0.01);
        opt.bind(m.as_ref());
        let mut pipe = ArenaPipeline::new(Box::new(opt));
        best_seconds(samples, rounds, || pipe.cycle(&workload, m.as_mut()))
    };

    let speedup_sgd = secs_sgd_hashmap / secs_sgd_arena;
    let speedup_adam = secs_adam_hashmap / secs_adam_arena;
    let min_speedup: f64 = std::env::var("NSC_GRAD_APPLY_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    println!(
        "gradient_apply d={DIM} examples={EXAMPLES} touched_rows={} shards={SHARDS}: \
         adam {:.1} µs (hashmap) vs {:.1} µs (arena) = {speedup_adam:.2}x (min {min_speedup}x); \
         sgd {:.1} µs vs {:.1} µs = {speedup_sgd:.2}x; \
         steady-state arena allocations over 10 cycles: {allocations}",
        workload.touched_rows(),
        secs_adam_hashmap * 1e6,
        secs_adam_arena * 1e6,
        secs_sgd_hashmap * 1e6,
        secs_sgd_arena * 1e6,
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"dim\": {DIM},\n    \"examples_per_batch\": {EXAMPLES},\n    \"touched_rows\": {},\n    \"entity_rows\": {ENTITIES},\n    \"relation_rows\": {RELATIONS},\n    \"shards\": {SHARDS},\n    \"emission\": \"TransE-shaped: (-v, -v, +v) on (head, relation, tail)\"\n  }},\n  \"cycle\": \"per-shard accumulate -> ascending-shard merge -> norm -> optimizer step\",\n  \"cycle_micros\": {{\n    \"adam_hashmap\": {:.3},\n    \"adam_arena\": {:.3},\n    \"sgd_hashmap\": {:.3},\n    \"sgd_arena\": {:.3}\n  }},\n  \"speedup_adam_cycle\": {speedup_adam:.3},\n  \"speedup_sgd_cycle\": {speedup_sgd:.3},\n  \"min_required_speedup\": {min_speedup},\n  \"steady_state_allocations_per_10_cycles\": {allocations},\n  \"note\": \"the Adam cycle (the paper's optimizer) carries the NSC_GRAD_APPLY_MIN gate; the engines differ in gradient plumbing (per-row heap churn + SipHash vs slab writes) and optimizer-state access (HashMap lookup + two scattered Vecs per row vs dense slabs walked in sorted row order); model emission math and constraint projection are engine-independent and excluded\"\n}}",
        workload.touched_rows(),
        secs_adam_hashmap * 1e6,
        secs_adam_arena * 1e6,
        secs_sgd_hashmap * 1e6,
        secs_sgd_arena * 1e6,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_gradients.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "gradients", "gradient_apply", &section)
    {
        eprintln!("could not record BENCH_gradients.json at {path:?}: {e}");
    }

    assert_eq!(
        allocations, 0,
        "steady-state arena cycles must not allocate (clear→accumulate→merge→apply)"
    );
    assert!(
        speedup_adam >= min_speedup,
        "batched Adam gradient cycle must be ≥{min_speedup}x the HashMap engine \
         (got {speedup_adam:.2}x; override with NSC_GRAD_APPLY_MIN)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = assert_gradient_apply, bench_cycles
}
criterion_main!(benches);
