//! Criterion bench: the double-buffered pipelined engine against the pool
//! engine it overlaps — machinery cost on narrow hosts, overlap win on wide
//! ones.
//!
//! Run with `cargo bench -p nscaching-bench --bench pipeline_overlap`.
//!
//! The pipelined engine (`TrainRuntime::Pipelined`) scores batch k+1 against
//! a pre-step shadow model on the worker pool while the main thread merges
//! and applies batch k. That buys overlap, and it costs machinery: one
//! `clone_box` of the model per epoch, per-batch stale-row bookkeeping, and
//! the shadow re-sync after every step. Two gates from the ISSUE's
//! acceptance bar, both recorded into the `pipeline_overlap` section of
//! `BENCH_parallel.json`:
//!
//! * **1-core pipeline overhead** — pipelined vs pool at a single shard on
//!   the same workload shape. With no spare core the overlap buys nothing,
//!   so the difference *is* the machinery: the gate says the double buffer
//!   may cost at most 5% of the epoch it decorates
//!   (`NSC_PIPELINE_OVERLAP_MAX`, fractional; CI relaxes it on shared
//!   runners the same way `NSC_POOL_OVERHEAD_MAX` is relaxed).
//! * **self-arming overlap ratio** — sequential seconds / 4-shard pipelined
//!   seconds. On hosts with ≥ 4 cores the gate arms itself at ≥ 2×
//!   (`NSC_PIPELINE_RATIO4_MIN`): overlapping sampling/scoring with the
//!   optimizer step must actually convert spare cores into throughput. On
//!   narrower hosts (this 1-core container included) the same ratio is
//!   recorded but the default floor relaxes to 0.85 — a sanity bound in the
//!   territory the pool engine itself occupies on 1 core, not a speedup
//!   claim.
//!
//! The engines are *trajectory-different by design* (the pipeline trains on
//! staleness-1 delayed gradients), so this bench compares wall-clock only;
//! `crates/train/tests/pipelined_equivalence.rs` holds the semantics
//! (bit-reproducibility, staged-engine equivalence, Algorithm 2 ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{TrainConfig, TrainData, TrainRuntime, Trainer};
use std::hint::black_box;
use std::time::Instant;

/// Same FB15K-shaped workload as `pool_overhead`, so machinery costs are
/// directly comparable across `BENCH_pool.json` and `BENCH_parallel.json`.
fn dataset() -> Dataset {
    let mut config = GeneratorConfig::small("bench-pipeline-fb15k");
    config.num_entities = 1_500;
    config.num_relations = 120;
    config.num_train = 8_000;
    config.num_valid = 200;
    config.num_test = 200;
    config.seed = 1;
    nscaching_datagen::generate(&config).expect("generation succeeds")
}

fn trainer(data: &TrainData, dataset: &Dataset, runtime: TrainRuntime, shards: usize) -> Trainer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(64)
            .with_seed(3),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(50, 50)),
        dataset,
        7,
    );
    let config = TrainConfig::new(0)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(3.0)
        .with_seed(11)
        .with_shards(shards)
        .with_runtime(runtime);
    Trainer::new(model, sampler, data, config)
}

/// Best-of-N epoch seconds after a warm-up epoch (pool spawned, shadow and
/// sampler caches materialised, scratch at high-water marks).
fn epoch_seconds(
    data: &TrainData,
    dataset: &Dataset,
    runtime: TrainRuntime,
    shards: usize,
    samples: usize,
) -> f64 {
    let mut t = trainer(data, dataset, runtime, shards);
    t.train_epoch(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        black_box(t.train_epoch());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_engines(c: &mut Criterion) {
    let dataset = dataset();
    let data = TrainData::from_dataset(&dataset);
    let mut group = c.benchmark_group("pipeline_epoch");
    group.sample_size(10);
    for (label, runtime, shards) in [
        ("pool_1", TrainRuntime::Pool, 1),
        ("pipelined_1", TrainRuntime::Pipelined, 1),
        ("pool_4", TrainRuntime::Pool, 4),
        ("pipelined_4", TrainRuntime::Pipelined, 4),
    ] {
        let mut t = trainer(&data, &dataset, runtime, shards);
        t.train_epoch(); // warm-up
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(t.train_epoch()))
        });
    }
    group.finish();
}

/// The acceptance gates: 1-core pipeline machinery ≤ `NSC_PIPELINE_OVERLAP_MAX`
/// over the pool engine, and on ≥ 4-core hosts a self-armed
/// ≥ `NSC_PIPELINE_RATIO4_MIN` (default 2×) overlap ratio vs sequential.
/// Records `BENCH_parallel.json`.
fn assert_pipeline_overlap(_c: &mut Criterion) {
    let dataset = dataset();
    let data = TrainData::from_dataset(&dataset);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let samples = 5;
    let secs_seq = epoch_seconds(&data, &dataset, TrainRuntime::Sequential, 1, samples);
    let secs_pool_1 = epoch_seconds(&data, &dataset, TrainRuntime::Pool, 1, samples);
    let secs_pipe_1 = epoch_seconds(&data, &dataset, TrainRuntime::Pipelined, 1, samples);
    let secs_pool_4 = epoch_seconds(&data, &dataset, TrainRuntime::Pool, 4, samples);
    let secs_pipe_4 = epoch_seconds(&data, &dataset, TrainRuntime::Pipelined, 4, samples);
    let overhead_1 = secs_pipe_1 / secs_pool_1 - 1.0;
    let ratio_4 = secs_seq / secs_pipe_4;
    let vs_pool_4 = secs_pool_4 / secs_pipe_4;

    let max_overhead: f64 = std::env::var("NSC_PIPELINE_OVERLAP_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    // The overlap gate self-arms: ≥ 2× only where ≥ 4 cores exist to
    // overlap onto; elsewhere a sanity floor in pool-engine territory.
    let armed = cores >= 4;
    let min_ratio_4: f64 = std::env::var("NSC_PIPELINE_RATIO4_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if armed { 2.0 } else { 0.85 });

    println!(
        "pipeline_overlap TransE d=64 NSCaching(50,50) |train|={}: \
         sequential {:.1} ms, pool@1 {:.1} ms, pipelined@1 {:.1} ms \
         ({:+.2}% machinery, max {:.1}%), pool@4 {:.1} ms, pipelined@4 {:.1} ms \
         ({ratio_4:.3}x vs sequential, {vs_pool_4:.3}x vs pool@4, \
         min {min_ratio_4}x {}) on {cores} core(s)",
        dataset.train.len(),
        secs_seq * 1e3,
        secs_pool_1 * 1e3,
        secs_pipe_1 * 1e3,
        overhead_1 * 100.0,
        max_overhead * 100.0,
        secs_pool_4 * 1e3,
        secs_pipe_4 * 1e3,
        if armed { "[armed]" } else { "[relaxed]" },
    );

    let section = format!(
        "{{\n  \"workload\": {{\n    \"model\": \"TransE\",\n    \"dim\": 64,\n    \"sampler\": \"NSCaching(N1=50, N2=50)\",\n    \"num_entities\": {},\n    \"num_train\": {},\n    \"batch_size\": 256\n  }},\n  \"cores\": {cores},\n  \"epoch_seconds\": {{\n    \"sequential\": {secs_seq:.6},\n    \"pool_1_shard\": {secs_pool_1:.6},\n    \"pipelined_1_shard\": {secs_pipe_1:.6},\n    \"pool_4_shards\": {secs_pool_4:.6},\n    \"pipelined_4_shards\": {secs_pipe_4:.6}\n  }},\n  \"pipeline_1_shard_overhead\": {overhead_1:.4},\n  \"max_allowed_overhead\": {max_overhead},\n  \"ratio_4_shards_vs_sequential\": {ratio_4:.3},\n  \"ratio_4_shards_vs_pool\": {vs_pool_4:.3},\n  \"min_required_ratio_4\": {min_ratio_4},\n  \"overlap_gate_armed\": {armed},\n  \"note\": \"pipelined@1 vs pool@1 isolates the double-buffer machinery (shadow clone_box per epoch, stale-row bookkeeping, post-step re-sync; <=5% gate, NSC_PIPELINE_OVERLAP_MAX); the overlap ratio gate self-arms at >=2x vs sequential on hosts with >=4 cores and relaxes to a 0.85x sanity floor on narrower hosts (NSC_PIPELINE_RATIO4_MIN). Wall-clock only: the engines train different staleness trajectories by design, semantics held by crates/train/tests/pipelined_equivalence.rs\"\n}}",
        dataset.num_entities(),
        dataset.train.len(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel.json");
    if let Err(e) =
        nscaching_bench::update_bench_section(&path, "parallel", "pipeline_overlap", &section)
    {
        eprintln!("could not record BENCH_parallel.json at {path:?}: {e}");
    }

    assert!(
        overhead_1 <= max_overhead,
        "1-shard pipelined machinery must cost ≤{:.1}% over the pool engine \
         (got {:+.2}%; override with NSC_PIPELINE_OVERLAP_MAX)",
        max_overhead * 100.0,
        overhead_1 * 100.0,
    );
    assert!(
        ratio_4 >= min_ratio_4,
        "4-shard pipelined epoch must reach ≥{min_ratio_4}x the sequential epoch \
         (got {ratio_4:.3}x on {cores} cores, gate {}; override with NSC_PIPELINE_RATIO4_MIN)",
        if armed { "armed" } else { "relaxed" },
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = assert_pipeline_overlap, bench_engines
}
criterion_main!(benches);
