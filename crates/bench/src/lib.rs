//! Shared infrastructure for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/`
//! (see DESIGN.md for the full index); this library provides the pieces they
//! share:
//!
//! * [`ExperimentSettings`] — command-line settings (`--scale`, `--epochs`,
//!   `--dim`, `--seed`, `--out`, `--smoke`) common to every binary;
//! * [`runner`] — canonical training configurations per scoring function, the
//!   method grid of Table IV (Bernoulli / KBGAN ± pretrain / NSCaching ±
//!   pretrain) and a single-call `train_once` used by all experiments;
//! * [`report`] — TSV writers that mirror every result to stdout and to
//!   `results/<experiment>.tsv`.

pub mod bench_json;
pub mod convergence;
pub mod report;
pub mod runner;
pub mod settings;

pub use bench_json::update_bench_section;
pub use convergence::run_convergence;
pub use report::TsvReport;
pub use runner::{standard_train_config, train_once, BenchDataset, Method, RunOutcome};
pub use settings::ExperimentSettings;
