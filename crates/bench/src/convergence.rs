//! Shared driver for the convergence figures (Figures 2–5): test MRR and
//! Hit@10 vs training wall-clock time for one scoring function across all
//! benchmark analogues and sampling methods.

use crate::report::TsvReport;
use crate::runner::{train_once, BenchDataset, Method};
use crate::settings::ExperimentSettings;
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

/// Run the convergence experiment for `kind` and write `<report_name>.tsv`.
pub fn run_convergence(kind: ModelKind, report_name: &str, settings: &ExperimentSettings) {
    let families = settings.select_families(if settings.smoke {
        vec![BenchmarkFamily::Wn18rr]
    } else {
        BenchmarkFamily::ALL.to_vec()
    });
    let pretrain_epochs = (settings.epochs / 2).max(1);
    let eval_every = (settings.epochs / 10).max(1);

    let mut report = TsvReport::new(
        report_name,
        &[
            "dataset", "method", "epoch", "seconds", "mrr", "hit@10", "mr",
        ],
    );

    for family in &families {
        let dataset = BenchDataset::new(
            family
                .generate(settings.scale, settings.seed)
                .expect("dataset generation succeeds"),
        );
        println!("# {} ({})", dataset.summary(), kind.name());
        for method in Method::TABLE4 {
            let outcome = train_once(
                &dataset,
                kind,
                method,
                settings,
                pretrain_epochs,
                eval_every,
            );
            for snapshot in &outcome.history.snapshots {
                report.push_row(&[
                    family.name().to_string(),
                    method.label().to_string(),
                    snapshot.epoch.to_string(),
                    format!("{:.2}", snapshot.elapsed_seconds + outcome.pretrain_seconds),
                    format!("{:.4}", snapshot.mrr),
                    format!("{:.2}", snapshot.hits_at_10 * 100.0),
                    format!("{:.1}", snapshot.mean_rank),
                ]);
            }
            let final_mrr = outcome
                .history
                .snapshots
                .last()
                .map(|s| s.mrr)
                .unwrap_or(outcome.report.combined.mrr);
            println!(
                "  {:22} final snapshot MRR = {:.4}",
                method.label(),
                final_mrr
            );
        }
    }

    report.write(settings).expect("write results");
    println!(
        "\nExpected shape (paper Figs. 2-5): the NSCaching curves rise fastest and plateau \
         highest; Bernoulli converges lower; KBGAN needs pretraining to be competitive."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_convergence_runs_and_writes_a_file() {
        let dir = std::env::temp_dir().join(format!("nscaching-conv-{}", std::process::id()));
        let settings =
            ExperimentSettings::parse(["--smoke", "--out", dir.to_str().unwrap()]).unwrap();
        run_convergence(ModelKind::TransE, "conv-smoke", &settings);
        let path = settings.results_path("conv-smoke");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.lines().count() > 1, "should contain snapshot rows");
        std::fs::remove_dir_all(dir).ok();
    }
}
