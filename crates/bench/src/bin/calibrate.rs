//! Quick hyper-parameter calibration sweep used while developing the
//! experiment harness (kept as a utility: it prints filtered MRR for a grid
//! of learning rates and penalties on a small synthetic dataset).

use nscaching::SamplerConfig;
use nscaching_datagen::GeneratorConfig;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{TrainConfig, Trainer};

fn main() {
    let mut config = GeneratorConfig::small("calibrate");
    config.num_entities = 200;
    config.num_train = 2_000;
    config.num_valid = 100;
    config.num_test = 100;
    config.seed = 7;
    let dataset = nscaching_datagen::generate(&config).expect("generation succeeds");
    println!("{}", dataset.summary());

    for kind in [ModelKind::ComplEx, ModelKind::DistMult, ModelKind::TransE] {
        for &lr in &[0.01, 0.02, 0.05] {
            for &lambda in &[0.0, 0.001, 0.01] {
                let model = build_model(
                    &ModelConfig::new(kind).with_dim(16).with_seed(13),
                    dataset.num_entities(),
                    dataset.num_relations(),
                );
                let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, &dataset, 17);
                // Calibration tunes the paper's sequential algorithm, so the
                // shard count is pinned rather than inherited from the
                // NSC_SHARDS test-matrix environment.
                let train_config = TrainConfig::new(15)
                    .with_batch_size(256)
                    .with_optimizer(OptimizerConfig::adam(lr))
                    .with_margin(3.0)
                    .with_lambda(lambda)
                    .with_seed(23)
                    .with_shards(1);
                let mut trainer = Trainer::new(model, sampler, &dataset, train_config);
                let history = trainer.run();
                let mrr = history.final_report.unwrap().combined.mrr;
                println!(
                    "{:10} lr={lr:<5} lambda={lambda:<6} MRR={mrr:.4}",
                    kind.name()
                );
            }
        }
    }
}
