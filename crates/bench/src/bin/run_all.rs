//! Runs every experiment binary in sequence with a shared settings line.
//!
//! `cargo run -p nscaching-bench --bin run_all --release -- [settings]`
//!
//! Each experiment writes its TSV under `--out` (default `results/`);
//! EXPERIMENTS.md documents how the outputs map onto the paper's tables and
//! figures. Pass `--smoke` for a minutes-long end-to-end check.

use nscaching_bench::ExperimentSettings;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table2",
    "exp_table4",
    "exp_table5",
    "exp_table6",
    "exp_fig1",
    "exp_fig2_3",
    "exp_fig4_5",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_fig10",
    "exp_lazy_update",
    "exp_corruption_side",
];

fn main() {
    // Validate the settings once so a typo fails before any experiment runs.
    let settings = ExperimentSettings::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "running {} experiments with scale={} epochs={} dim={} out={}",
        EXPERIMENTS.len(),
        settings.scale,
        settings.epochs,
        settings.dim,
        settings.out_dir().display()
    );

    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary directory")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================");
        let status = Command::new(exe_dir.join(name)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "could not launch {name}: {e}\n(build all binaries first: cargo build --release -p nscaching-bench --bins)"
                );
                failures.push(*name);
            }
        }
    }

    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
