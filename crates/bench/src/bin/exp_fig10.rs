//! Figure 10 — illustration of the vanishing-gradient problem.
//!
//! Reports the mini-batch average L2 gradient norm per epoch for Bernoulli
//! and NSCaching on the WN18RR analogue, with TransD and ComplEx as in the
//! paper.
//!
//! Expected shape: both curves decrease but neither reaches zero; the
//! NSCaching curve stays clearly above the Bernoulli curve, showing that
//! cache-based negatives keep producing gradients.

use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_bench::runner::{scaled_cache_size, train_with_sampler, BenchDataset};
use nscaching_bench::{ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset: BenchDataset = BenchmarkFamily::Wn18rr
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds")
        .into();
    println!("dataset: {}", dataset.summary());
    let cache = scaled_cache_size(dataset.num_entities());

    let models = if settings.smoke {
        vec![ModelKind::TransD]
    } else {
        vec![ModelKind::TransD, ModelKind::ComplEx]
    };

    let mut report = TsvReport::new(
        "fig10_gradient_norms",
        &[
            "model",
            "method",
            "epoch",
            "mean_gradient_norm",
            "nonzero_loss_ratio",
        ],
    );

    for &kind in &models {
        for (label, sampler) in [
            ("Bernoulli".to_owned(), SamplerConfig::Bernoulli),
            (
                "NSCaching".to_owned(),
                SamplerConfig::NsCaching(NsCachingConfig::new(cache, cache)),
            ),
        ] {
            let outcome =
                train_with_sampler(&dataset, kind, sampler, label.clone(), 0, &settings, 0);
            for stats in &outcome.history.epochs {
                report.push_row(&[
                    kind.name().to_string(),
                    label.clone(),
                    stats.epoch.to_string(),
                    format!("{:.6}", stats.mean_gradient_norm),
                    format!("{:.4}", stats.nonzero_loss_ratio),
                ]);
            }
            let last = outcome.history.epochs.last().unwrap();
            println!(
                "  {:9} {:10} final grad norm = {:.4}",
                kind.name(),
                label,
                last.mean_gradient_norm
            );
        }
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Fig. 10): gradient norms shrink for both methods but NSCaching \
         stays above Bernoulli throughout training."
    );
}
