//! Extra ablation (Table I discussion): the lazy-update period `n`.
//!
//! The paper notes that the cache can be refreshed every `n + 1` epochs to
//! cut the update cost to `O((N1+N2)d / (n+1))`. This experiment sweeps
//! `n ∈ {0, 1, 3}` for TransD on the WN18 analogue and reports the final MRR
//! and the training wall-clock time, showing the cost/quality trade-off.

use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_bench::runner::{scaled_cache_size, train_with_sampler, BenchDataset};
use nscaching_bench::{ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset: BenchDataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds")
        .into();
    println!("dataset: {}", dataset.summary());
    let cache = scaled_cache_size(dataset.num_entities());

    let mut report = TsvReport::new(
        "ablation_lazy_update",
        &[
            "lazy_n",
            "mrr",
            "hit@10",
            "train_seconds",
            "cache_changes_total",
        ],
    );

    for lazy in [0usize, 1, 3] {
        let label = format!("n={lazy}");
        let sampler =
            SamplerConfig::NsCaching(NsCachingConfig::new(cache, cache).with_lazy_update(lazy));
        let outcome = train_with_sampler(
            &dataset,
            ModelKind::TransD,
            sampler,
            label.clone(),
            0,
            &settings,
            0,
        );
        let total_changes: u64 = outcome
            .history
            .epochs
            .iter()
            .map(|e| e.changed_cache_elements)
            .sum();
        report.push_row(&[
            lazy.to_string(),
            format!("{:.4}", outcome.report.combined.mrr),
            format!("{:.2}", outcome.report.combined.hits_at_10 * 100.0),
            format!("{:.1}", outcome.history.total_seconds),
            total_changes.to_string(),
        ]);
        println!(
            "  lazy n={lazy}: MRR = {:.4}, {:.1}s",
            outcome.report.combined.mrr, outcome.history.total_seconds
        );
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape: larger n cuts training time (fewer cache refreshes) with a small MRR \
         cost; n = 0 (the paper's default) is the quality ceiling."
    );
}
