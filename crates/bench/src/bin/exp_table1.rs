//! Table I — complexity comparison of the negative-sampling methods.
//!
//! The paper's Table I is analytic (big-O per mini-batch plus parameter
//! counts). This experiment measures the empirical counterparts on one
//! synthetic dataset: nanoseconds per sampled negative, nanoseconds per
//! sample+state-update, extra trainable parameters owned by the sampler and
//! the cache memory footprint. The orderings to check against the paper:
//! uniform/Bernoulli < NSCaching ≪ KBGAN < IGAN in per-sample cost, and only
//! the GAN methods carry extra parameters.

use nscaching::{build_sampler, NegativeSampler, NsCachingConfig, SamplerConfig};
use nscaching_bench::{ExperimentSettings, TsvReport};
use nscaching_math::seeded_rng;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use std::time::Instant;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset = nscaching_datagen::BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds");
    println!("dataset: {}", dataset.summary());

    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(settings.dim)
            .with_seed(settings.seed),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let model_params = model.num_parameters();

    let cache_size = nscaching_bench::runner::scaled_cache_size(dataset.num_entities());
    let methods: Vec<(&str, SamplerConfig)> = vec![
        ("Uniform", SamplerConfig::Uniform),
        ("Bernoulli", SamplerConfig::Bernoulli),
        (
            "NSCaching",
            SamplerConfig::NsCaching(NsCachingConfig::new(cache_size, cache_size)),
        ),
        ("KBGAN", SamplerConfig::kbgan_default()),
        ("IGAN", SamplerConfig::igan_default()),
    ];

    let samples = if settings.smoke { 500 } else { 5_000 };
    let mut report = TsvReport::new(
        "table1_complexity",
        &[
            "method",
            "ns_per_sample",
            "ns_per_sample_and_update",
            "extra_parameters",
            "extra_param_ratio",
            "cache_bytes",
        ],
    );

    for (name, config) in methods {
        let mut sampler = build_sampler(&config, &dataset, settings.seed);
        let mut rng = seeded_rng(settings.seed + 11);

        // Phase 1: sampling only.
        let start = Instant::now();
        for i in 0..samples {
            let positive = dataset.train[i % dataset.train.len()];
            let negative = sampler.sample(&positive, model.as_ref(), &mut rng);
            std::hint::black_box(negative);
        }
        let ns_sample = start.elapsed().as_nanos() as f64 / samples as f64;

        // Phase 2: the full per-triple pipeline (sample + feedback + update).
        let start = Instant::now();
        for i in 0..samples {
            let positive = dataset.train[i % dataset.train.len()];
            let negative = sampler.sample(&positive, model.as_ref(), &mut rng);
            let reward = model.score(&negative.triple);
            sampler.feedback(&positive, &negative, reward, &mut rng);
            sampler.update(&positive, model.as_ref(), &mut rng);
        }
        let ns_full = start.elapsed().as_nanos() as f64 / samples as f64;

        let extra = sampler.extra_parameters();
        let cache_bytes =
            estimate_cache_bytes(&config, &dataset, settings.seed, samples, model.as_ref());
        report.push_row(&[
            name.to_string(),
            format!("{ns_sample:.0}"),
            format!("{ns_full:.0}"),
            extra.to_string(),
            format!("{:.2}", extra as f64 / model_params as f64),
            cache_bytes.to_string(),
        ]);
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Table I): Uniform/Bernoulli cheapest, NSCaching adds an \
         O((N1+N2)d) update, KBGAN adds a generator over N1 candidates, IGAN pays O(|E|d); \
         only KBGAN/IGAN carry extra parameters."
    );
}

/// Replays the sampling workload on a fresh NSCaching sampler to measure the
/// materialised cache footprint; other samplers hold no cache.
fn estimate_cache_bytes(
    config: &SamplerConfig,
    dataset: &nscaching_kg::Dataset,
    seed: u64,
    samples: usize,
    model: &dyn nscaching_models::KgeModel,
) -> usize {
    match config {
        SamplerConfig::NsCaching(ns) => {
            let mut sampler = nscaching::NsCachingSampler::new(
                *ns,
                dataset.num_entities(),
                nscaching::CorruptionPolicy::bernoulli_from_train(
                    &dataset.train,
                    dataset.num_relations(),
                ),
            );
            let mut rng = seeded_rng(seed + 17);
            for i in 0..samples.min(dataset.train.len()) {
                let positive = dataset.train[i];
                let _ = sampler.sample(&positive, model, &mut rng);
            }
            sampler.cache_memory_bytes()
        }
        _ => 0,
    }
}
