//! Figure 9 — sensitivity to the cache size N1 and the random-subset size N2.
//!
//! Sweeps N1 with N2 fixed, and N2 with N1 fixed, training TransD on the
//! WN18 analogue, reporting test MRR per epoch. The paper sweeps
//! {10, 30, 50, 70, 90} at full scale; the sweep here is expressed as
//! fractions of the full-scale values so it remains meaningful on the scaled
//! synthetic benchmarks.
//!
//! Expected shape: performance is insensitive to N1/N2 once both are large
//! enough; a very small N1 hurts (more false negatives sampled), and a very
//! small N2 hurts (the cache cannot refresh).

use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_bench::runner::{scaled_cache_size, train_with_sampler, BenchDataset};
use nscaching_bench::{ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset: BenchDataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds")
        .into();
    println!("dataset: {}", dataset.summary());

    // The paper's sweep {10, 30, 50, 70, 90} corresponds to 0.2×..1.8× of the
    // default 50; apply the same multipliers to the scaled default.
    let base = scaled_cache_size(dataset.num_entities());
    let sweep: Vec<usize> = [0.2, 0.6, 1.0, 1.4, 1.8]
        .iter()
        .map(|m| ((base as f64) * m).round().max(2.0) as usize)
        .collect();
    let eval_every = (settings.epochs / 10).max(1);

    let mut report = TsvReport::new(
        "fig9_cache_size_sensitivity",
        &["panel", "n1", "n2", "epoch", "mrr"],
    );

    // Panel (a): vary N1, fix N2 = base.
    for &n1 in &sweep {
        run_point(
            &mut report,
            "a_vary_n1",
            n1,
            base,
            &dataset,
            &settings,
            eval_every,
        );
    }
    // Panel (b): vary N2, fix N1 = base.
    for &n2 in &sweep {
        run_point(
            &mut report,
            "b_vary_n2",
            base,
            n2,
            &dataset,
            &settings,
            eval_every,
        );
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Fig. 9): curves overlap for all but the smallest sizes; \
         N1 too small admits false negatives, N2 too small starves the cache refresh."
    );
}

fn run_point(
    report: &mut TsvReport,
    panel: &str,
    n1: usize,
    n2: usize,
    dataset: &BenchDataset,
    settings: &ExperimentSettings,
    eval_every: usize,
) {
    let label = format!("N1={n1},N2={n2}");
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(n1, n2));
    let outcome = train_with_sampler(
        dataset,
        ModelKind::TransD,
        sampler,
        label.clone(),
        0,
        settings,
        eval_every,
    );
    for snapshot in &outcome.history.snapshots {
        report.push_row(&[
            panel.to_string(),
            n1.to_string(),
            n2.to_string(),
            snapshot.epoch.to_string(),
            format!("{:.4}", snapshot.mrr),
        ]);
    }
    println!(
        "  {:14} final MRR = {:.4}",
        label, outcome.report.combined.mrr
    );
}
