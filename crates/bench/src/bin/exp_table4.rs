//! Table IV — the paper's main link-prediction comparison.
//!
//! For every benchmark analogue and scoring function, trains the target model
//! with each negative-sampling method (Bernoulli, KBGAN ± pretrain,
//! NSCaching ± pretrain) and reports filtered MRR, MR and Hit@10, plus the
//! Bernoulli-pretrained reference the paper lists as "pretrained".
//!
//! The shapes to check against the paper: NSCaching (either start) beats
//! Bernoulli and KBGAN on MRR for every scoring function; KBGAN needs the
//! pretrained start to be competitive, NSCaching does not.
//!
//! The full 4 × 5 × 5 grid is expensive; `--smoke` runs a single dataset and
//! scoring function, and the `--datasets`/`--models` filters of `run_all`
//! select subsets.

use nscaching_bench::{train_once, BenchDataset, ExperimentSettings, Method, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let families: Vec<BenchmarkFamily> = settings.select_families(if settings.smoke {
        vec![BenchmarkFamily::Wn18rr]
    } else {
        BenchmarkFamily::ALL.to_vec()
    });
    let models: Vec<ModelKind> = settings.select_models(if settings.smoke {
        vec![ModelKind::TransE]
    } else {
        ModelKind::PAPER.to_vec()
    });

    let mut report = TsvReport::new(
        "table4_link_prediction",
        &[
            "dataset",
            "model",
            "method",
            "mrr",
            "mr",
            "hit@10",
            "train_seconds",
        ],
    );
    let pretrain_epochs = (settings.epochs / 2).max(1);

    for family in &families {
        let dataset: BenchDataset = family
            .generate(settings.scale, settings.seed)
            .expect("dataset generation succeeds")
            .into();
        println!("# {}", dataset.summary());
        for &model in &models {
            // The "pretrained" reference row: the Bernoulli model after only the
            // pretraining epochs.
            let pretrained_ref = {
                let mut pre_settings = settings.clone();
                pre_settings.epochs = pretrain_epochs;
                train_once(&dataset, model, Method::Bernoulli, &pre_settings, 0, 0)
            };
            push_result(&mut report, family, model, "pretrained", &pretrained_ref);

            for method in Method::TABLE4 {
                let outcome = train_once(&dataset, model, method, &settings, pretrain_epochs, 0);
                push_result(&mut report, family, model, method.label(), &outcome);
            }
        }
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Table IV): NSCaching+scratch and NSCaching+pretrain lead on MRR \
         and Hit@10 across datasets and scoring functions; KBGAN degrades without pretraining."
    );
}

fn push_result(
    report: &mut TsvReport,
    family: &BenchmarkFamily,
    model: ModelKind,
    method: &str,
    outcome: &nscaching_bench::RunOutcome,
) {
    let m = outcome.report.combined;
    report.push_row(&[
        family.name().to_string(),
        model.name().to_string(),
        method.to_string(),
        format!("{:.4}", m.mrr),
        format!("{:.1}", m.mean_rank),
        format!("{:.2}", m.hits_at_10 * 100.0),
        format!(
            "{:.1}",
            outcome.history.total_seconds + outcome.pretrain_seconds
        ),
    ]);
    println!(
        "  {:22} {:9} MRR={:.4} MR={:6.1} Hit@10={:5.2}",
        method,
        model.name(),
        m.mrr,
        m.mean_rank,
        m.hits_at_10 * 100.0
    );
}
