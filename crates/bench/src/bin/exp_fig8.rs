//! Figure 8 — exploration vs exploitation of the cache-update strategies.
//!
//! Reports, per epoch, the number of changed cache elements (CE —
//! exploration) and the non-zero loss ratio (NZL — exploitation) for
//! NSCaching with IS / top / uniform cache updates, TransD on the WN18
//! analogue.
//!
//! Expected shape: the IS update keeps the cache fresh (high CE) while
//! maintaining a high NZL; the top update freezes the cache (low CE), and the
//! uniform update explores but loses exploitation (lower NZL than IS).

use nscaching::{NsCachingConfig, SamplerConfig, UpdateStrategy};
use nscaching_bench::runner::{scaled_cache_size, train_with_sampler, BenchDataset};
use nscaching_bench::{ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset: BenchDataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds")
        .into();
    println!("dataset: {}", dataset.summary());
    let cache = scaled_cache_size(dataset.num_entities());

    let mut report = TsvReport::new(
        "fig8_ce_nzl",
        &[
            "update_strategy",
            "epoch",
            "changed_elements",
            "nonzero_loss_ratio",
        ],
    );

    for strategy in UpdateStrategy::ALL {
        let label = format!("{}-update", strategy.name());
        let sampler = SamplerConfig::NsCaching(
            NsCachingConfig::new(cache, cache).with_update_strategy(strategy),
        );
        let outcome = train_with_sampler(
            &dataset,
            ModelKind::TransD,
            sampler,
            label.clone(),
            0,
            &settings,
            0,
        );
        for stats in &outcome.history.epochs {
            report.push_row(&[
                label.clone(),
                stats.epoch.to_string(),
                stats.changed_cache_elements.to_string(),
                format!("{:.4}", stats.nonzero_loss_ratio),
            ]);
        }
        let last = outcome.history.epochs.last().unwrap();
        println!(
            "  {:15} final CE = {}, final NZL = {:.3}, final MRR = {:.4}",
            label,
            last.changed_cache_elements,
            last.nonzero_loss_ratio,
            outcome.report.combined.mrr
        );
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Fig. 8): top update changes far fewer cache elements than the \
         IS update; the IS update sustains both exploration (CE) and exploitation (NZL)."
    );
}
