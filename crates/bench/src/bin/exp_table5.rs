//! Table V — triplet classification on the WN18RR / FB15K237 analogues.
//!
//! Trains TransD and ComplEx with each method, tunes per-relation thresholds
//! on a labeled validation set and reports test accuracy. Expected shape:
//! NSCaching (either start) gives the best accuracy; KBGAN can fall below the
//! Bernoulli baseline, especially for ComplEx.

use nscaching_bench::{train_once, BenchDataset, ExperimentSettings, Method, TsvReport};
use nscaching_datagen::{generate_classification_sets, BenchmarkFamily};
use nscaching_eval::classification::{evaluate_classification, Example};
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let families = settings.select_families(if settings.smoke {
        vec![BenchmarkFamily::Wn18rr]
    } else {
        vec![BenchmarkFamily::Wn18rr, BenchmarkFamily::Fb15k237]
    });
    let models = settings.select_models(if settings.smoke {
        vec![ModelKind::TransD]
    } else {
        vec![ModelKind::TransD, ModelKind::ComplEx]
    });
    let methods = [
        Method::Bernoulli,
        Method::KbGanPretrain,
        Method::KbGanScratch,
        Method::NsCachingPretrain,
        Method::NsCachingScratch,
    ];
    let pretrain_epochs = (settings.epochs / 2).max(1);

    let mut report = TsvReport::new(
        "table5_classification",
        &[
            "dataset",
            "model",
            "method",
            "test_accuracy",
            "valid_accuracy",
        ],
    );

    for family in &families {
        let dataset: BenchDataset = family
            .generate(settings.scale, settings.seed)
            .expect("dataset generation succeeds")
            .into();
        println!("# {}", dataset.summary());
        let labeled = generate_classification_sets(&dataset, settings.seed + 101);
        let valid: Vec<Example> = labeled
            .valid
            .iter()
            .map(|l| Example::new(l.triple, l.label))
            .collect();
        let test: Vec<Example> = labeled
            .test
            .iter()
            .map(|l| Example::new(l.triple, l.label))
            .collect();

        for &model in &models {
            for method in methods {
                let outcome = train_once(&dataset, model, method, &settings, pretrain_epochs, 0);
                let classification = evaluate_classification(outcome.model.as_ref(), &valid, &test);
                report.push_row(&[
                    family.name().to_string(),
                    model.name().to_string(),
                    method.label().to_string(),
                    format!("{:.2}", classification.test_accuracy * 100.0),
                    format!("{:.2}", classification.valid_accuracy * 100.0),
                ]);
                println!(
                    "  {:9} {:22} accuracy = {:.2}%",
                    model.name(),
                    method.label(),
                    classification.test_accuracy * 100.0
                );
            }
        }
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Table V): NSCaching rows give the highest accuracy on both \
         datasets; KBGAN underperforms Bernoulli for ComplEx."
    );
}
