//! Extra ablation (Section IV-B1): Bernoulli vs uniform corruption-side
//! choice inside NSCaching.
//!
//! The paper uses the Bernoulli scheme to choose between `(h̄, r, t)` and
//! `(h, r, t̄)` for both KBGAN and NSCaching; this experiment checks how much
//! that choice matters compared to a fair coin, for TransD and ComplEx on the
//! WN18 analogue.

use nscaching::{CorruptionPolicy, NegativeSampler, NsCachingConfig, NsCachingSampler};
use nscaching_bench::runner::scaled_cache_size;
use nscaching_bench::{standard_train_config, ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_train::Trainer;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds");
    println!("dataset: {}", dataset.summary());
    let cache = scaled_cache_size(dataset.num_entities());

    let models = if settings.smoke {
        vec![ModelKind::TransD]
    } else {
        vec![ModelKind::TransD, ModelKind::ComplEx]
    };

    let mut report = TsvReport::new(
        "ablation_corruption_side",
        &["model", "side_policy", "mrr", "hit@10"],
    );

    for &kind in &models {
        for (label, bernoulli_side) in [("bernoulli-side", true), ("uniform-side", false)] {
            let policy = if bernoulli_side {
                CorruptionPolicy::bernoulli_from_train(&dataset.train, dataset.num_relations())
            } else {
                CorruptionPolicy::Uniform
            };
            let sampler = Box::new(NsCachingSampler::new(
                NsCachingConfig::new(cache, cache),
                dataset.num_entities(),
                policy,
            )) as Box<dyn NegativeSampler>;
            let model = build_model(
                &ModelConfig::new(kind)
                    .with_dim(settings.dim)
                    .with_seed(settings.seed ^ 0x5eed),
                dataset.num_entities(),
                dataset.num_relations(),
            );
            let config = standard_train_config(kind, &settings);
            let mut trainer = Trainer::new(model, sampler, &dataset, config);
            trainer.run();
            let metrics = trainer.history().final_report.unwrap().combined;
            report.push_row(&[
                kind.name().to_string(),
                label.to_string(),
                format!("{:.4}", metrics.mrr),
                format!("{:.2}", metrics.hits_at_10 * 100.0),
            ]);
            println!("  {:9} {:15} MRR = {:.4}", kind.name(), label, metrics.mrr);
        }
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape: the Bernoulli side choice gives a small but consistent edge on \
         datasets with skewed relation cardinalities, matching the paper's design choice."
    );
}
