//! Figures 4 & 5 — test MRR / Hit@10 vs wall-clock time for ComplEx.
//!
//! Same protocol as Figures 2 & 3 but with the ComplEx scoring function
//! (the paper uses it as the representative semantic-matching model).
//!
//! Expected shape: Bernoulli and NSCaching converge to a stable value with
//! NSCaching on top; KBGAN overfits and turns down after a while, especially
//! from scratch.

use nscaching_bench::{run_convergence, ExperimentSettings};
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    run_convergence(ModelKind::ComplEx, "fig4_5_complex_convergence", &settings);
}
