//! Table II — statistics of the (synthetic) benchmark datasets.
//!
//! Prints entity/relation/split counts for the four generated benchmark
//! analogues at the configured scale, plus the relation-category breakdown
//! and the paper's full-scale reference numbers for comparison.

use nscaching_bench::{runner::benchmark_datasets, ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_kg::{BernoulliStats, DatasetStats};

fn paper_row(family: BenchmarkFamily) -> (usize, usize, usize, usize, usize) {
    match family {
        BenchmarkFamily::Wn18 => (40_943, 18, 141_442, 5_000, 5_000),
        BenchmarkFamily::Wn18rr => (40_943, 11, 86_835, 3_034, 3_134),
        BenchmarkFamily::Fb15k => (14_951, 1_345, 484_142, 50_000, 59_071),
        BenchmarkFamily::Fb15k237 => (14_541, 237, 272_115, 17_535, 20_466),
    }
}

fn main() {
    let settings = ExperimentSettings::from_env();
    let mut report = TsvReport::new(
        "table2_datasets",
        &[
            "dataset",
            "entities",
            "relations",
            "train",
            "valid",
            "test",
            "rel_1-1",
            "rel_1-N",
            "rel_N-1",
            "rel_N-N",
            "paper_entities",
            "paper_train",
        ],
    );

    for (family, dataset) in benchmark_datasets(&settings) {
        let stats = DatasetStats::of(&dataset);
        let bernoulli = BernoulliStats::from_train(&dataset.train, dataset.num_relations());
        let categories = bernoulli.category_counts();
        let (paper_entities, _, paper_train, _, _) = paper_row(family);
        report.push_row(&[
            stats.name,
            stats.entities.to_string(),
            stats.relations.to_string(),
            stats.train.to_string(),
            stats.valid.to_string(),
            stats.test.to_string(),
            categories[0].to_string(),
            categories[1].to_string(),
            categories[2].to_string(),
            categories[3].to_string(),
            paper_entities.to_string(),
            paper_train.to_string(),
        ]);
    }

    report.write(&settings).expect("write results");
    println!(
        "\nscale = {}: the synthetic analogues keep the relative proportions of the real \
         benchmarks (Table II of the paper); pass --scale 1.0 for full-size generation.",
        settings.scale
    );
}
