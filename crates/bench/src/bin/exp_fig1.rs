//! Figure 1 — distribution of negative-triple score distances.
//!
//! Trains Bernoulli-TransD on the WN18 analogue (as in the paper) and
//! records, for a fixed positive triple, the CCDF of
//! `D(h,r,t̄) = f(h,r,t̄) − f(h,r,t)` at several training epochs
//! (Figure 1(a)), and, at the end of training, the CCDF for five different
//! positive triples (Figure 1(b)). The margin −γ is included as a column so
//! the plots can draw the paper's red dashed line.
//!
//! Expected shape: the distributions are highly skewed — only a small
//! fraction of negatives stays above the margin, and that fraction shrinks as
//! training proceeds.

use nscaching::SamplerConfig;
use nscaching_bench::{standard_train_config, ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_eval::negative_distance_ccdf;
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_train::Trainer;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds");
    println!("dataset: {}", dataset.summary());
    let filter = dataset.filter_index();

    let model = build_model(
        &ModelConfig::new(ModelKind::TransD)
            .with_dim(settings.dim)
            .with_seed(settings.seed),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, &dataset, settings.seed);
    let train_config = standard_train_config(ModelKind::TransD, &settings);
    let margin = train_config.margin;
    let mut trainer = Trainer::new(model, sampler, &dataset, train_config);

    let probe = dataset.train[0];
    let grid_points = 40;

    // Figure 1(a): one triple, several epochs.
    let mut fig_a = TsvReport::new(
        "fig1a_ccdf_over_epochs",
        &["epoch", "distance", "ccdf", "neg_margin"],
    );
    let checkpoints: Vec<usize> = checkpoint_epochs(settings.epochs);
    record_ccdf(
        &mut fig_a,
        "0",
        trainer.model(),
        &probe,
        &filter,
        margin,
        grid_points,
    );
    for epoch in 0..settings.epochs {
        trainer.train_epoch();
        if checkpoints.contains(&(epoch + 1)) {
            record_ccdf(
                &mut fig_a,
                &(epoch + 1).to_string(),
                trainer.model(),
                &probe,
                &filter,
                margin,
                grid_points,
            );
        }
    }
    fig_a.write(&settings).expect("write results");

    // Figure 1(b): five triples after training.
    let mut fig_b = TsvReport::new(
        "fig1b_ccdf_over_triples",
        &["triple", "distance", "ccdf", "neg_margin"],
    );
    for (i, positive) in dataset
        .train
        .iter()
        .step_by(dataset.train.len() / 5)
        .take(5)
        .enumerate()
    {
        record_ccdf(
            &mut fig_b,
            &format!("triple{i}"),
            trainer.model(),
            positive,
            &filter,
            margin,
            grid_points,
        );
    }
    fig_b.write(&settings).expect("write results");

    println!(
        "\nExpected shape (paper Fig. 1): the CCDF collapses quickly — only a few negatives keep \
         D above −γ — and the collapse deepens with training."
    );
}

fn checkpoint_epochs(total: usize) -> Vec<usize> {
    let mut points = vec![1, total / 4, total / 2, 3 * total / 4, total];
    points.retain(|&e| e >= 1);
    points.dedup();
    points
}

fn record_ccdf(
    report: &mut TsvReport,
    label: &str,
    model: &dyn nscaching_models::KgeModel,
    positive: &Triple,
    filter: &nscaching_kg::FilterIndex,
    margin: f64,
    grid_points: usize,
) {
    let ccdf = negative_distance_ccdf(model, positive, CorruptionSide::Tail, Some(filter));
    for (x, p) in ccdf.evaluate(&ccdf.default_grid(grid_points)) {
        report.push_row(&[
            label.to_string(),
            format!("{x:.4}"),
            format!("{p:.5}"),
            format!("{:.2}", -margin),
        ]);
    }
}
