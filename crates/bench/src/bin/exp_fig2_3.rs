//! Figures 2 & 3 — test MRR / Hit@10 vs wall-clock time for TransD.
//!
//! Trains TransD on the benchmark analogues with Bernoulli, KBGAN ± pretrain
//! and NSCaching ± pretrain, taking periodic filtered evaluation snapshots
//! stamped with the training wall-clock time (pretraining time is charged to
//! the pretrained methods, as in the paper's plots).
//!
//! Expected shape: NSCaching curves dominate at every time budget and
//! converge fastest; KBGAN without pretraining is the weakest curve.

use nscaching_bench::{run_convergence, ExperimentSettings};
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    run_convergence(ModelKind::TransD, "fig2_3_transd_convergence", &settings);
}
