//! Figure 7 — exploration vs exploitation of the sampling strategies.
//!
//! Reports, per epoch, the repeat ratio (RR: fraction of sampled negatives
//! already drawn within the recent window — exploration) and the non-zero
//! loss ratio (NZL — exploitation) for Bernoulli sampling and for NSCaching
//! with uniform / IS / top sampling from the cache, TransD on the WN18
//! analogue.
//!
//! Expected shape: Bernoulli has near-zero RR but its NZL collapses; the
//! cache strategies keep NZL high, with top sampling repeating the most and
//! uniform sampling giving the best balance.

use nscaching::{NsCachingConfig, SampleStrategy, SamplerConfig};
use nscaching_bench::runner::{scaled_cache_size, train_with_sampler, BenchDataset};
use nscaching_bench::{ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset: BenchDataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds")
        .into();
    println!("dataset: {}", dataset.summary());
    let cache = scaled_cache_size(dataset.num_entities());

    let mut variants: Vec<(String, SamplerConfig)> =
        vec![("Bernoulli".to_owned(), SamplerConfig::Bernoulli)];
    for strategy in SampleStrategy::ALL {
        variants.push((
            format!("NSCaching-{}", strategy.name()),
            SamplerConfig::NsCaching(
                NsCachingConfig::new(cache, cache).with_sample_strategy(strategy),
            ),
        ));
    }

    let mut report = TsvReport::new(
        "fig7_rr_nzl",
        &["method", "epoch", "repeat_ratio", "nonzero_loss_ratio"],
    );

    for (label, sampler) in variants {
        let outcome = train_with_sampler(
            &dataset,
            ModelKind::TransD,
            sampler,
            label.clone(),
            0,
            &settings,
            0,
        );
        for stats in &outcome.history.epochs {
            report.push_row(&[
                label.clone(),
                stats.epoch.to_string(),
                format!("{:.4}", stats.repeat_ratio),
                format!("{:.4}", stats.nonzero_loss_ratio),
            ]);
        }
        let last = outcome.history.epochs.last().unwrap();
        println!(
            "  {:18} final RR = {:.3}, final NZL = {:.3}",
            label, last.repeat_ratio, last.nonzero_loss_ratio
        );
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Fig. 7): Bernoulli RR ≈ 0 but NZL collapses towards 0; the \
         cache-based strategies keep NZL above ~0.5, with RR highest for top sampling, lower \
         for IS, lowest (among cache strategies) for uniform."
    );
}
