//! Figure 6 — ablation of the cache sampling / update strategies.
//!
//! (a) compares how negatives are drawn from the cache (uniform vs IS vs top
//! sampling) and (b) compares how the cache is refreshed (IS vs top update),
//! reporting test MRR per epoch for TransD on the WN18 analogue.
//!
//! Expected shape: uniform sampling from the cache is best and top sampling
//! worst (Fig. 6(a)); IS update clearly beats top update (Fig. 6(b)).

use nscaching::{NsCachingConfig, SampleStrategy, SamplerConfig, UpdateStrategy};
use nscaching_bench::runner::{train_with_sampler, BenchDataset};
use nscaching_bench::{runner::scaled_cache_size, ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_models::ModelKind;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset: BenchDataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds")
        .into();
    println!("dataset: {}", dataset.summary());
    let cache = scaled_cache_size(dataset.num_entities());
    let eval_every = (settings.epochs / 10).max(1);

    let mut report = TsvReport::new(
        "fig6_strategy_ablation",
        &["panel", "strategy", "epoch", "mrr", "hit@10"],
    );

    // Panel (a): sample-from-cache strategy (IS update fixed).
    for strategy in SampleStrategy::ALL {
        let config = NsCachingConfig::new(cache, cache).with_sample_strategy(strategy);
        run_variant(
            &mut report,
            "a_sampling",
            &format!("{}-sampling", strategy.name()),
            SamplerConfig::NsCaching(config),
            &dataset,
            &settings,
            eval_every,
        );
    }

    // Panel (b): cache-update strategy (uniform sampling fixed).
    for strategy in [UpdateStrategy::Importance, UpdateStrategy::Top] {
        let config = NsCachingConfig::new(cache, cache).with_update_strategy(strategy);
        run_variant(
            &mut report,
            "b_update",
            &format!("{}-update", strategy.name()),
            SamplerConfig::NsCaching(config),
            &dataset,
            &settings,
            eval_every,
        );
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Fig. 6): uniform sampling from the cache > IS sampling > top \
         sampling; IS cache update > top update by a large margin."
    );
}

fn run_variant(
    report: &mut TsvReport,
    panel: &str,
    label: &str,
    sampler: SamplerConfig,
    dataset: &BenchDataset,
    settings: &ExperimentSettings,
    eval_every: usize,
) {
    let outcome = train_with_sampler(
        dataset,
        ModelKind::TransD,
        sampler,
        label.to_owned(),
        0,
        settings,
        eval_every,
    );
    for snapshot in &outcome.history.snapshots {
        report.push_row(&[
            panel.to_string(),
            label.to_string(),
            snapshot.epoch.to_string(),
            format!("{:.4}", snapshot.mrr),
            format!("{:.2}", snapshot.hits_at_10 * 100.0),
        ]);
    }
    println!(
        "  {:18} final MRR = {:.4}",
        label, outcome.report.combined.mrr
    );
}
