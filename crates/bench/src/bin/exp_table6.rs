//! Table VI — evolution of the cache contents (self-paced learning).
//!
//! The paper shows, for one positive fact of FB13, how the entities held in
//! its tail cache change from meaningless ones to plausible-but-wrong ones as
//! training proceeds. Without lexical labels, the synthetic analogue tracks
//! the *hardness* of the cached entities instead: their mean rank among all
//! possible tail corruptions under the current model (rank 1 = the hardest
//! negative) and their mean score gap to the true tail. The self-paced effect
//! appears as the cached entities' mean rank dropping towards the top while
//! training converges — cache members move from random (easy) to hard.

use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_bench::{standard_train_config, ExperimentSettings, TsvReport};
use nscaching_datagen::BenchmarkFamily;
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use nscaching_train::Trainer;

fn main() {
    let settings = ExperimentSettings::from_env();
    let dataset = BenchmarkFamily::Wn18
        .generate(settings.scale, settings.seed)
        .expect("dataset generation succeeds");
    println!("dataset: {}", dataset.summary());

    // Probe one fixed positive fact, as the paper does.
    let probe: Triple = dataset.train[0];
    let cache_size = nscaching_bench::runner::scaled_cache_size(dataset.num_entities());

    let model = build_model(
        &ModelConfig::new(ModelKind::TransD)
            .with_dim(settings.dim)
            .with_seed(settings.seed),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = nscaching::build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(cache_size, cache_size)),
        &dataset,
        settings.seed,
    );
    let train_config = standard_train_config(ModelKind::TransD, &settings);
    let mut trainer = Trainer::new(model, sampler, &dataset, train_config);

    let mut report = TsvReport::new(
        "table6_cache_evolution",
        &[
            "epoch",
            "mean_rank_of_cached",
            "median_possible_rank",
            "mean_score_gap_to_true_tail",
            "cache_sample",
        ],
    );

    for epoch in 0..settings.epochs {
        trainer.train_epoch();
        let cached = trainer
            .sampler()
            .tail_cache_contents(&probe)
            .unwrap_or_default();
        if cached.is_empty() {
            continue;
        }
        let should_report = epoch == 0
            || epoch == settings.epochs - 1
            || (epoch + 1) % (settings.epochs / 5).max(1) == 0;
        if !should_report {
            continue;
        }
        let (mean_rank, mean_gap) = hardness(trainer.model(), &probe, &cached);
        let preview: Vec<u32> = cached.iter().copied().take(5).collect();
        report.push_row(&[
            (epoch + 1).to_string(),
            format!("{mean_rank:.1}"),
            format!("{:.1}", dataset.num_entities() as f64 / 2.0),
            format!("{mean_gap:.3}"),
            format!("{preview:?}"),
        ]);
    }

    report.write(&settings).expect("write results");
    println!(
        "\nExpected shape (paper Table VI / Section III-C): the mean rank of cached entities \
         starts near the random baseline (half the entity count) and falls towards the top as \
         the cache fills with hard negatives — the self-paced learning effect."
    );
}

/// Mean rank of the cached entities among all tail corruptions (1 = highest
/// scoring) and their mean score gap to the true tail.
fn hardness(model: &dyn KgeModel, probe: &Triple, cached: &[u32]) -> (f64, f64) {
    let scores = model.score_all(probe, CorruptionSide::Tail);
    let true_score = model.score(probe);
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let mut rank_of = vec![0usize; scores.len()];
    for (rank, &entity) in order.iter().enumerate() {
        rank_of[entity] = rank + 1;
    }
    let mean_rank = cached
        .iter()
        .map(|&e| rank_of[e as usize] as f64)
        .sum::<f64>()
        / cached.len().max(1) as f64;
    let mean_gap = cached
        .iter()
        .map(|&e| true_score - scores[e as usize])
        .sum::<f64>()
        / cached.len().max(1) as f64;
    (mean_rank, mean_gap)
}
