//! Command-line settings shared by every experiment binary.

use std::path::{Path, PathBuf};

/// Settings parsed from the command line.
///
/// ```text
/// --scale <f64>    dataset scale factor relative to the real benchmarks (default 0.01)
/// --epochs <n>     training epochs per run (default 20)
/// --dim <n>        embedding dimension (default 32)
/// --seed <n>       master seed (default 0)
/// --out <dir>      output directory for TSV results (default results)
/// --eval-max <n>   cap on evaluated test triples (default: all)
/// --threads <n>    training shards and eval worker threads (default:
///                  NSC_SHARDS for training, available parallelism for eval)
/// --runtime <engine>  training engine: sequential | pool | pipelined
///                  (default: the shard-count heuristic, TrainRuntime::Auto)
/// --checkpoint-every <n>  save a training checkpoint every n epochs
///                  (default 0 = off; files land in --checkpoint-dir)
/// --checkpoint-dir <dir>  where per-run checkpoints are written
///                  (default <out>/checkpoints)
/// --resume <path>  resume interrupted runs: a checkpoint file (single-run
///                  binaries) or a directory of per-run checkpoints (grids);
///                  runs without a matching checkpoint start fresh
/// --metrics-out <file>  append the metrics-registry exposition (phase
///                  timers, epoch gauges) after each run, one `# run <label>`
///                  section per run (default: off; the TSV output is
///                  unaffected either way)
/// --smoke          tiny configuration used by CI / integration tests
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentSettings {
    /// Dataset scale factor in `(0, 1]`.
    pub scale: f64,
    /// Training epochs per run.
    pub epochs: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for TSV files.
    pub out_dir: PathBuf,
    /// Cap on evaluated test triples (None = all).
    pub eval_max: Option<usize>,
    /// Worker count threaded into `TrainConfig::shards` and
    /// `EvalProtocol::threads` (None = each component's own default).
    pub threads: Option<usize>,
    /// Training engine pin threaded into `TrainConfig::runtime`
    /// (None = `TrainRuntime::Auto`, the shard-count heuristic).
    pub runtime: Option<nscaching_train::TrainRuntime>,
    /// Smoke mode: shrink everything so the binary finishes in seconds.
    pub smoke: bool,
    /// Restrict grid experiments to these dataset families (comma-separated
    /// `--datasets wn18,fb15k237`); None = the experiment's default.
    pub datasets: Option<Vec<String>>,
    /// Restrict grid experiments to these scoring functions (comma-separated
    /// `--models TransE,ComplEx`); None = the experiment's default.
    pub models: Option<Vec<String>>,
    /// Save a checkpoint every this many epochs (0 = never).
    pub checkpoint_every: usize,
    /// Directory for per-run checkpoint files (None = `<out>/checkpoints`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume source: a checkpoint file or a directory of per-run
    /// checkpoints (None = always start fresh).
    pub resume: Option<PathBuf>,
    /// Append the metrics exposition here after each run (None = off).
    pub metrics_out: Option<PathBuf>,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        Self {
            scale: 0.01,
            epochs: 20,
            dim: 32,
            seed: 0,
            out_dir: PathBuf::from("results"),
            eval_max: None,
            threads: None,
            runtime: None,
            smoke: false,
            datasets: None,
            models: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: None,
            metrics_out: None,
        }
    }
}

impl ExperimentSettings {
    /// Parse from an explicit argument list (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut settings = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            let mut next_value = |flag: &str| -> Result<String, String> {
                iter.next()
                    .map(|v| v.as_ref().to_owned())
                    .ok_or_else(|| format!("missing value for {flag}"))
            };
            match arg {
                "--scale" => {
                    settings.scale = next_value(arg)?
                        .parse()
                        .map_err(|e| format!("invalid --scale: {e}"))?
                }
                "--epochs" => {
                    settings.epochs = next_value(arg)?
                        .parse()
                        .map_err(|e| format!("invalid --epochs: {e}"))?
                }
                "--dim" => {
                    settings.dim = next_value(arg)?
                        .parse()
                        .map_err(|e| format!("invalid --dim: {e}"))?
                }
                "--seed" => {
                    settings.seed = next_value(arg)?
                        .parse()
                        .map_err(|e| format!("invalid --seed: {e}"))?
                }
                "--out" => settings.out_dir = PathBuf::from(next_value(arg)?),
                "--eval-max" => {
                    settings.eval_max = Some(
                        next_value(arg)?
                            .parse()
                            .map_err(|e| format!("invalid --eval-max: {e}"))?,
                    )
                }
                "--threads" => {
                    let threads: usize = next_value(arg)?
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?;
                    if threads == 0 {
                        return Err("--threads must be positive".to_owned());
                    }
                    settings.threads = Some(threads);
                }
                "--runtime" => {
                    settings.runtime = Some(match next_value(arg)?.to_lowercase().as_str() {
                        "sequential" => nscaching_train::TrainRuntime::Sequential,
                        "pool" => nscaching_train::TrainRuntime::Pool,
                        "pipelined" => nscaching_train::TrainRuntime::Pipelined,
                        other => {
                            return Err(format!(
                                "invalid --runtime {other}: expected sequential, pool or pipelined"
                            ))
                        }
                    });
                }
                "--datasets" => {
                    settings.datasets = Some(
                        next_value(arg)?
                            .split(',')
                            .map(|s| s.trim().to_lowercase())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--models" => {
                    settings.models = Some(
                        next_value(arg)?
                            .split(',')
                            .map(|s| s.trim().to_lowercase())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--checkpoint-every" => {
                    settings.checkpoint_every = next_value(arg)?
                        .parse()
                        .map_err(|e| format!("invalid --checkpoint-every: {e}"))?
                }
                "--checkpoint-dir" => {
                    settings.checkpoint_dir = Some(PathBuf::from(next_value(arg)?))
                }
                "--resume" => settings.resume = Some(PathBuf::from(next_value(arg)?)),
                "--metrics-out" => settings.metrics_out = Some(PathBuf::from(next_value(arg)?)),
                "--smoke" => settings.smoke = true,
                "--help" | "-h" => return Err(Self::usage().to_owned()),
                other => return Err(format!("unknown argument {other}\n{}", Self::usage())),
            }
        }
        if settings.smoke {
            settings.apply_smoke();
        }
        if !(settings.scale > 0.0 && settings.scale <= 1.0) {
            return Err("--scale must be in (0, 1]".to_owned());
        }
        if settings.epochs == 0 || settings.dim == 0 {
            return Err("--epochs and --dim must be positive".to_owned());
        }
        Ok(settings)
    }

    /// Parse from `std::env::args()`, printing usage and exiting on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(s) => s,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    fn apply_smoke(&mut self) {
        self.scale = self.scale.min(0.004);
        self.epochs = self.epochs.min(3);
        self.dim = self.dim.min(12);
        self.eval_max = Some(self.eval_max.unwrap_or(40).min(40));
    }

    /// Usage string shown for `--help` and argument errors.
    pub fn usage() -> &'static str {
        "usage: <experiment> [--scale F] [--epochs N] [--dim N] [--seed N] [--out DIR] \
         [--eval-max N] [--threads N] [--runtime sequential|pool|pipelined] \
         [--datasets a,b] [--models A,B] \
         [--checkpoint-every N] [--checkpoint-dir DIR] [--resume PATH] \
         [--metrics-out FILE] [--smoke]"
    }

    /// Directory where per-run checkpoints are written.
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.checkpoint_dir
            .clone()
            .unwrap_or_else(|| self.out_dir.join("checkpoints"))
    }

    /// Filter a default list of benchmark families by `--datasets`.
    pub fn select_families(
        &self,
        default: Vec<nscaching_datagen::BenchmarkFamily>,
    ) -> Vec<nscaching_datagen::BenchmarkFamily> {
        match &self.datasets {
            None => default,
            Some(wanted) => default
                .into_iter()
                .filter(|f| wanted.iter().any(|w| w == f.name()))
                .collect(),
        }
    }

    /// Filter a default list of scoring functions by `--models`.
    pub fn select_models(
        &self,
        default: Vec<nscaching_models::ModelKind>,
    ) -> Vec<nscaching_models::ModelKind> {
        match &self.models {
            None => default,
            Some(wanted) => default
                .into_iter()
                .filter(|m| wanted.iter().any(|w| w == &m.name().to_lowercase()))
                .collect(),
        }
    }

    /// Path of the TSV output file for an experiment name.
    pub fn results_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.tsv"))
    }

    /// Ensure the output directory exists.
    pub fn ensure_out_dir(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.out_dir)
    }

    /// Output directory as a path.
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = ExperimentSettings::default();
        assert!(s.scale > 0.0 && s.scale <= 1.0);
        assert!(s.epochs > 0);
        assert!(!s.smoke);
    }

    #[test]
    fn parse_overrides_every_field() {
        let s = ExperimentSettings::parse([
            "--scale",
            "0.05",
            "--epochs",
            "7",
            "--dim",
            "24",
            "--seed",
            "9",
            "--out",
            "tmpout",
            "--eval-max",
            "100",
            "--threads",
            "4",
            "--runtime",
            "pipelined",
        ])
        .unwrap();
        assert_eq!(s.scale, 0.05);
        assert_eq!(s.epochs, 7);
        assert_eq!(s.dim, 24);
        assert_eq!(s.seed, 9);
        assert_eq!(s.out_dir, PathBuf::from("tmpout"));
        assert_eq!(s.eval_max, Some(100));
        assert_eq!(s.threads, Some(4));
        assert_eq!(s.runtime, Some(nscaching_train::TrainRuntime::Pipelined));
    }

    #[test]
    fn runtime_parses_every_engine_and_rejects_unknown_ones() {
        use nscaching_train::TrainRuntime;
        for (flag, expected) in [
            ("sequential", TrainRuntime::Sequential),
            ("pool", TrainRuntime::Pool),
            ("Pipelined", TrainRuntime::Pipelined),
        ] {
            let s = ExperimentSettings::parse(["--runtime", flag]).unwrap();
            assert_eq!(s.runtime, Some(expected), "--runtime {flag}");
        }
        assert!(ExperimentSettings::default().runtime.is_none());
        assert!(ExperimentSettings::parse(["--runtime", "turbo"]).is_err());
        assert!(ExperimentSettings::parse(["--runtime"]).is_err());
    }

    #[test]
    fn smoke_mode_shrinks_the_configuration() {
        let s = ExperimentSettings::parse(["--epochs", "50", "--smoke"]).unwrap();
        assert!(s.smoke);
        assert!(s.epochs <= 3);
        assert!(s.scale <= 0.004);
        assert!(s.eval_max.unwrap() <= 40);
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(ExperimentSettings::parse(["--scale", "2.0"]).is_err());
        assert!(ExperimentSettings::parse(["--bogus"]).is_err());
        assert!(ExperimentSettings::parse(["--epochs"]).is_err());
        assert!(ExperimentSettings::parse(["--epochs", "0"]).is_err());
        assert!(ExperimentSettings::parse(["--threads", "0"]).is_err());
        assert!(ExperimentSettings::parse(["--threads", "x"]).is_err());
    }

    #[test]
    fn results_path_joins_out_dir() {
        let s = ExperimentSettings::parse(["--out", "x"]).unwrap();
        assert_eq!(s.results_path("table4"), PathBuf::from("x/table4.tsv"));
    }

    #[test]
    fn checkpoint_flags_parse_and_default() {
        let s = ExperimentSettings::parse([
            "--checkpoint-every",
            "5",
            "--resume",
            "ckpts/run.ckpt",
            "--out",
            "o",
        ])
        .unwrap();
        assert_eq!(s.checkpoint_every, 5);
        assert_eq!(s.resume, Some(PathBuf::from("ckpts/run.ckpt")));
        assert_eq!(s.checkpoint_dir(), PathBuf::from("o/checkpoints"));
        let s = ExperimentSettings::parse(["--checkpoint-dir", "elsewhere"]).unwrap();
        assert_eq!(s.checkpoint_dir(), PathBuf::from("elsewhere"));
        assert_eq!(s.checkpoint_every, 0, "checkpointing defaults to off");
        assert!(s.resume.is_none());
        assert!(ExperimentSettings::parse(["--checkpoint-every", "x"]).is_err());
        assert!(ExperimentSettings::parse(["--resume"]).is_err());
    }

    #[test]
    fn metrics_out_parses_and_defaults_to_off() {
        let s = ExperimentSettings::parse(["--metrics-out", "o/metrics.txt"]).unwrap();
        assert_eq!(s.metrics_out, Some(PathBuf::from("o/metrics.txt")));
        assert!(ExperimentSettings::default().metrics_out.is_none());
        assert!(ExperimentSettings::parse(["--metrics-out"]).is_err());
    }
}

#[cfg(test)]
mod filter_tests {
    use super::*;
    use nscaching_datagen::BenchmarkFamily;
    use nscaching_models::ModelKind;

    #[test]
    fn dataset_and_model_filters_select_subsets() {
        let s = ExperimentSettings::parse([
            "--datasets",
            "wn18,fb15k237",
            "--models",
            "transe,ComplEx",
        ])
        .unwrap();
        let families = s.select_families(BenchmarkFamily::ALL.to_vec());
        assert_eq!(
            families,
            vec![BenchmarkFamily::Wn18, BenchmarkFamily::Fb15k237]
        );
        let models = s.select_models(ModelKind::PAPER.to_vec());
        assert_eq!(models, vec![ModelKind::TransE, ModelKind::ComplEx]);
    }

    #[test]
    fn no_filter_keeps_the_default() {
        let s = ExperimentSettings::default();
        assert_eq!(s.select_families(BenchmarkFamily::ALL.to_vec()).len(), 4);
        assert_eq!(s.select_models(ModelKind::PAPER.to_vec()).len(), 5);
    }
}
