//! Canonical experiment runs: the method grid of Table IV and a single-call
//! training helper shared by every experiment binary.

use crate::settings::ExperimentSettings;
use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_datagen::BenchmarkFamily;
use nscaching_eval::{EvalProtocol, LinkPredictionReport};
use nscaching_kg::Dataset;
use nscaching_models::{KgeModel, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{pretrain_model, TrainConfig, TrainData, Trainer, TrainingHistory};

/// A dataset bundled with its shared [`TrainData`] view, built once so every
/// run of a (model, sampler) grid reuses the same `Arc`'d splits and filter
/// index instead of copying FB15K-sized vectors per run.
///
/// Dereferences to the wrapped [`Dataset`], so existing read-only call sites
/// (`summary()`, `num_entities()`, split access) are unaffected.
pub struct BenchDataset {
    dataset: Dataset,
    data: TrainData,
}

impl BenchDataset {
    /// Wrap a dataset, snapshotting its splits into shared storage once.
    pub fn new(dataset: Dataset) -> Self {
        let data = TrainData::from_dataset(&dataset);
        Self { dataset, data }
    }

    /// The wrapped dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The shared split view handed to every trainer.
    pub fn data(&self) -> &TrainData {
        &self.data
    }
}

impl From<Dataset> for BenchDataset {
    fn from(dataset: Dataset) -> Self {
        Self::new(dataset)
    }
}

impl std::ops::Deref for BenchDataset {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        &self.dataset
    }
}

/// The negative-sampling methods compared in Table IV (IGAN rows are copied
/// from its paper there; the IGAN-style sampler is exercised separately by
/// the Table I complexity experiment and the `compare_samplers` example).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Bernoulli baseline (also the "pretrained" reference model).
    Bernoulli,
    /// KBGAN trained from scratch.
    KbGanScratch,
    /// KBGAN warm-started from a Bernoulli-pretrained model.
    KbGanPretrain,
    /// NSCaching trained from scratch.
    NsCachingScratch,
    /// NSCaching warm-started from a Bernoulli-pretrained model.
    NsCachingPretrain,
}

impl Method {
    /// The five rows of Table IV, in the paper's order.
    pub const TABLE4: [Method; 5] = [
        Method::Bernoulli,
        Method::KbGanPretrain,
        Method::KbGanScratch,
        Method::NsCachingPretrain,
        Method::NsCachingScratch,
    ];

    /// Label used in the result tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Bernoulli => "Bernoulli",
            Method::KbGanScratch => "KBGAN+scratch",
            Method::KbGanPretrain => "KBGAN+pretrain",
            Method::NsCachingScratch => "NSCaching+scratch",
            Method::NsCachingPretrain => "NSCaching+pretrain",
        }
    }

    /// Whether this method warm-starts from a Bernoulli-pretrained model.
    pub fn pretrained(&self) -> bool {
        matches!(self, Method::KbGanPretrain | Method::NsCachingPretrain)
    }

    /// The sampler configuration for this method, with the cache / candidate
    /// size scaled to the dataset (the paper uses `N1 = N2 = 50` at full
    /// scale; tiny synthetic graphs use a proportionally smaller cache).
    pub fn sampler(&self, cache_size: usize) -> SamplerConfig {
        match self {
            Method::Bernoulli => SamplerConfig::Bernoulli,
            Method::KbGanScratch | Method::KbGanPretrain => SamplerConfig::KbGan {
                generator: ModelKind::TransE,
                generator_dim: 16,
                candidate_size: cache_size,
                generator_lr: 0.01,
            },
            Method::NsCachingScratch | Method::NsCachingPretrain => {
                SamplerConfig::NsCaching(NsCachingConfig::new(cache_size, cache_size))
            }
        }
    }
}

/// The cache / candidate-set size used at a given dataset scale: the paper's
/// 50 at full scale, shrunk (but never below 10) for the scaled-down
/// synthetic benchmarks so the cache stays a small fraction of the entity set.
pub fn scaled_cache_size(num_entities: usize) -> usize {
    (num_entities / 20).clamp(10, 50)
}

/// The canonical training configuration for a scoring function, following
/// Section IV-A2: Adam, margin γ for the translational models, penalty λ for
/// the semantic-matching models. `--threads` (when given) sets both the
/// trainer's shard count and the evaluation protocols' worker threads,
/// overriding the `NSC_SHARDS` / available-parallelism defaults; `--runtime`
/// pins the epoch engine (sequential / pool / the double-buffered pipelined
/// engine) where the default leaves `TrainRuntime::Auto`'s shard-count
/// heuristic in charge.
pub fn standard_train_config(kind: ModelKind, settings: &ExperimentSettings) -> TrainConfig {
    let learning_rate = match kind {
        ModelKind::TransE | ModelKind::TransH | ModelKind::TransD | ModelKind::TransR => 0.02,
        ModelKind::DistMult | ModelKind::ComplEx | ModelKind::Rescal => 0.05,
    };
    let mut config = TrainConfig::new(settings.epochs)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(learning_rate))
        .with_margin(3.0)
        .with_lambda(0.001)
        .with_seed(settings.seed);
    config.snapshot_protocol =
        EvalProtocol::filtered().with_max_triples(settings.eval_max.unwrap_or(200).min(200));
    config.final_protocol = match settings.eval_max {
        Some(max) => EvalProtocol::filtered().with_max_triples(max),
        None => EvalProtocol::filtered(),
    };
    match settings.threads {
        Some(threads) => {
            config = config.with_shards(threads);
            config.snapshot_protocol = config.snapshot_protocol.with_threads(threads);
            config.final_protocol = config.final_protocol.with_threads(threads);
        }
        // Without an explicit --threads the experiment binaries always run
        // the sequential paper-exact trainer, even when the test-matrix
        // variable NSC_SHARDS is exported in the environment: the paper's
        // tables and figures must not change because of ambient env.
        None => config = config.with_shards(1),
    }
    if let Some(runtime) = settings.runtime {
        config = config.with_runtime(runtime);
    }
    config
}

/// Everything a single training run produces.
pub struct RunOutcome {
    /// Which method produced it.
    pub label: String,
    /// Full training history (epoch stats + snapshots).
    pub history: TrainingHistory,
    /// Final filtered link-prediction report.
    pub report: LinkPredictionReport,
    /// Seconds spent pretraining (0 for scratch methods).
    pub pretrain_seconds: f64,
    /// The trained model, for downstream evaluations (classification, CCDFs).
    pub model: Box<dyn KgeModel>,
}

/// Train `kind` on `dataset` with `method`, following the paper's protocol.
///
/// * `pretrain_epochs` — epochs of Bernoulli warm-up used by the `+pretrain`
///   methods (the paper pretrains "several epochs"; the experiment binaries
///   use `epochs / 2`).
/// * `eval_every` — snapshot period in epochs (0 disables snapshots).
pub fn train_once(
    dataset: &BenchDataset,
    kind: ModelKind,
    method: Method,
    settings: &ExperimentSettings,
    pretrain_epochs: usize,
    eval_every: usize,
) -> RunOutcome {
    let cache_size = scaled_cache_size(dataset.num_entities());
    train_with_sampler(
        dataset,
        kind,
        method.sampler(cache_size),
        method.label().to_owned(),
        if method.pretrained() {
            pretrain_epochs
        } else {
            0
        },
        settings,
        eval_every,
    )
}

/// The per-run checkpoint file name under a checkpoint directory: label,
/// scoring function and dataset shape, so grid runs (same binary, several
/// datasets × models) never collide.
fn checkpoint_file_name(label: &str, kind: ModelKind, dataset: &BenchDataset) -> String {
    let slug: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    format!(
        "{slug}-{}-e{}-t{}.ckpt",
        kind.name().to_lowercase(),
        dataset.num_entities(),
        dataset.train.len()
    )
}

/// The per-run *managed* checkpoint directory (a
/// [`CheckpointManager`](nscaching_serve::CheckpointManager) home): the same
/// naming scheme as the legacy flat file, with a `.ckpts` directory suffix.
fn run_dir_name(label: &str, kind: ModelKind, dataset: &BenchDataset) -> String {
    format!("{}s", checkpoint_file_name(label, kind, dataset))
}

/// Checkpoints a managed run keeps around: the newest plus one fallback, so
/// a save torn by a crash (or bit rot on the newest file) still leaves a
/// valid last-good checkpoint to resume from.
const CHECKPOINT_KEEP: usize = 2;

/// Resolve where this run's checkpoint lives for `--resume`: a directory
/// resolves through the per-run naming scheme, a file is taken verbatim.
fn resume_path(
    resume: &std::path::Path,
    label: &str,
    kind: ModelKind,
    dataset: &BenchDataset,
) -> std::path::PathBuf {
    if resume.is_dir() {
        resume.join(checkpoint_file_name(label, kind, dataset))
    } else {
        resume.to_path_buf()
    }
}

/// What a resume attempt concluded — separated from its stderr reporting so
/// the fallback policy is directly testable. The crucial distinction is
/// [`ResumeOutcome::NoCheckpoint`] (the expected cold-start case: nothing to
/// resume, nothing to warn about) versus [`ResumeOutcome::Unusable`] (a file
/// *was* there but could not be used — corruption, truncation, schema drift —
/// which an operator monitoring a long grid run wants to hear about loudly,
/// with the typed [`nscaching_serve::SnapshotError`] saying exactly why).
enum ResumeOutcome {
    /// `--resume` was not given.
    Disabled,
    /// No checkpoint file exists at the resolved path (normal cold start).
    NoCheckpoint(std::path::PathBuf),
    /// A matching checkpoint resumed the run. `fallbacks` lists newer files
    /// that failed validation and were quarantined on the way to it —
    /// non-empty means the newest checkpoint was corrupt and the manager
    /// fell back to the next-newest valid one.
    Resumed {
        trainer: Box<Trainer>,
        path: std::path::PathBuf,
        fallbacks: Vec<(
            std::path::PathBuf,
            std::path::PathBuf,
            nscaching_serve::SnapshotError,
        )>,
    },
    /// A checkpoint file exists but is unusable (and no valid fallback
    /// remains); the typed error says why.
    Unusable {
        path: std::path::PathBuf,
        error: nscaching_serve::SnapshotError,
    },
}

/// Validate a decoded checkpoint against the run's shape and resume it.
fn resume_attempt(
    checkpoint: nscaching_serve::Checkpoint,
    dataset: &BenchDataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    settings: &ExperimentSettings,
    train_config: &TrainConfig,
) -> Result<Trainer, nscaching_serve::SnapshotError> {
    if checkpoint.model.kind != kind
        || checkpoint.model.dim != settings.dim
        || checkpoint.model.num_entities != dataset.num_entities()
        || checkpoint.model.num_relations != dataset.num_relations()
    {
        return Err(nscaching_serve::SnapshotError::SchemaMismatch(format!(
            "checkpoint holds {:?} d={} |E|={} |R|={}, run wants {:?} d={} |E|={} |R|={}",
            checkpoint.model.kind,
            checkpoint.model.dim,
            checkpoint.model.num_entities,
            checkpoint.model.num_relations,
            kind,
            settings.dim,
            dataset.num_entities(),
            dataset.num_relations()
        )));
    }
    let sampler =
        nscaching::build_sampler(sampler, dataset.dataset(), settings.seed.wrapping_add(2));
    nscaching_serve::resume_trainer(checkpoint, sampler, dataset.data(), train_config.clone())
}

/// Attempt to resume this run from `--resume` (no I/O to stderr — see
/// [`try_resume`] for the reporting policy; quarantine renames inside a
/// managed directory are the one filesystem mutation).
///
/// A managed per-run directory (written by `--checkpoint-every`) resolves
/// through [`nscaching_serve::CheckpointManager::recover`]: a corrupt newest
/// checkpoint is quarantined and the next-newest valid one resumes the run.
/// A bare file path, or a legacy flat checkpoint file, is loaded verbatim.
fn resume_outcome(
    dataset: &BenchDataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    label: &str,
    settings: &ExperimentSettings,
    train_config: &TrainConfig,
) -> ResumeOutcome {
    let Some(resume) = settings.resume.as_deref() else {
        return ResumeOutcome::Disabled;
    };

    // Managed layout first: <resume>/<run>.ckpts/ckpt-<seq>.ckpt.
    let managed = resume.join(run_dir_name(label, kind, dataset));
    if resume.is_dir() && managed.is_dir() {
        return resume_from_managed(&managed, dataset, kind, sampler, settings, train_config);
    }

    // Legacy flat file (or an explicit --resume <file>).
    let path = resume_path(resume, label, kind, dataset);
    if !path.exists() {
        return ResumeOutcome::NoCheckpoint(path);
    }
    let attempt = nscaching_serve::load_checkpoint(&path).and_then(|checkpoint| {
        resume_attempt(checkpoint, dataset, kind, sampler, settings, train_config)
    });
    match attempt {
        Ok(trainer) => ResumeOutcome::Resumed {
            trainer: Box::new(trainer),
            path,
            fallbacks: Vec::new(),
        },
        Err(error) => ResumeOutcome::Unusable { path, error },
    }
}

/// Resume from a managed checkpoint directory via last-good recovery.
fn resume_from_managed(
    managed: &std::path::Path,
    dataset: &BenchDataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    settings: &ExperimentSettings,
    train_config: &TrainConfig,
) -> ResumeOutcome {
    let manager = match nscaching_serve::CheckpointManager::new(managed, CHECKPOINT_KEEP) {
        Ok(manager) => manager,
        Err(error) => {
            return ResumeOutcome::Unusable {
                path: managed.to_path_buf(),
                error,
            }
        }
    };
    // Read-only verdicts first, so an all-corrupt directory can still report
    // the newest file's typed error after recovery quarantines everything.
    let verified = match manager.list_verified() {
        Ok(verified) => verified,
        Err(error) => {
            return ResumeOutcome::Unusable {
                path: managed.to_path_buf(),
                error,
            }
        }
    };
    if verified.is_empty() {
        return ResumeOutcome::NoCheckpoint(managed.to_path_buf());
    }
    match manager.recover() {
        Err(error) => ResumeOutcome::Unusable {
            path: managed.to_path_buf(),
            error,
        },
        Ok(None) => {
            // Everything failed validation. Report the newest file's verdict
            // (frame-valid files that fail the section decode fall back to a
            // generic corruption error).
            let (entry, verdict) = verified.into_iter().next().expect("non-empty");
            ResumeOutcome::Unusable {
                path: entry.path,
                error: verdict.err().unwrap_or_else(|| {
                    nscaching_serve::SnapshotError::Corrupt(
                        "frame verifies but the section decode fails".into(),
                    )
                }),
            }
        }
        Ok(Some(recovery)) => {
            let path = recovery.path;
            match resume_attempt(
                recovery.checkpoint,
                dataset,
                kind,
                sampler,
                settings,
                train_config,
            ) {
                Ok(trainer) => ResumeOutcome::Resumed {
                    trainer: Box::new(trainer),
                    path,
                    fallbacks: recovery.quarantined,
                },
                Err(error) => ResumeOutcome::Unusable { path, error },
            }
        }
    }
}

/// Try to resume this run from `--resume`. Any failure falls back to a fresh
/// run — resumption is an optimisation, never a correctness requirement —
/// but the failure modes report differently on stderr: a missing checkpoint
/// is a routine cold start (one informational line); a corrupt newest
/// checkpoint in a managed directory WARNs with both paths (the quarantined
/// file and the next-newest valid one that actually resumed the run); an
/// unusable checkpoint with no fallback left is surfaced as a warning
/// carrying the typed [`nscaching_serve::SnapshotError`]. A *matching*
/// checkpoint continues the interrupted trajectory bit-for-bit (see
/// `nscaching_serve`).
fn try_resume(
    dataset: &BenchDataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    label: &str,
    settings: &ExperimentSettings,
    train_config: &TrainConfig,
) -> Option<Trainer> {
    match resume_outcome(dataset, kind, sampler, label, settings, train_config) {
        ResumeOutcome::Disabled => None,
        ResumeOutcome::NoCheckpoint(path) => {
            eprintln!("[{label}] no checkpoint at {path:?}; starting fresh");
            None
        }
        ResumeOutcome::Resumed {
            trainer,
            path,
            fallbacks,
        } => {
            for (from, to, error) in &fallbacks {
                eprintln!(
                    "[{label}] WARNING: checkpoint {from:?} failed validation ({error}); \
                     quarantined to {to:?}, falling back to {path:?}"
                );
            }
            eprintln!(
                "[{label}] resumed from checkpoint {path:?} at epoch {}",
                trainer.epochs_done()
            );
            Some(*trainer)
        }
        ResumeOutcome::Unusable { path, error } => {
            eprintln!(
                "[{label}] WARNING: checkpoint at {path:?} is unusable ({error}); starting fresh"
            );
            None
        }
    }
}

/// Train with an explicit sampler configuration (used by the ablation
/// figures, which need non-default strategies and cache sizes).
///
/// Honours the checkpoint flags: with `--resume` the run continues from its
/// per-run checkpoint when one matches (skipping pretraining — the
/// checkpointed tables already embody it), and with `--checkpoint-every N`
/// the trainer saves a resumable checkpoint to `--checkpoint-dir` every `N`
/// finished epochs through [`Trainer::run_with`]'s epoch hook.
///
/// With `--metrics-out FILE` the trainer runs instrumented (a fresh
/// [`nscaching_obs::MetricsRegistry`] per run, attached through
/// [`Trainer::attach_metrics`]) and the registry's exposition is appended to
/// `FILE` under a `# run <label>` header when the run finishes. Attaching
/// telemetry never perturbs the trajectory (asserted in
/// `nscaching_train`'s `telemetry_equivalence` suite), and the TSV outputs
/// are bit-unchanged either way.
pub fn train_with_sampler(
    dataset: &BenchDataset,
    kind: ModelKind,
    sampler: SamplerConfig,
    label: String,
    pretrain_epochs: usize,
    settings: &ExperimentSettings,
    eval_every: usize,
) -> RunOutcome {
    let model_config = ModelConfig::new(kind)
        .with_dim(settings.dim)
        .with_seed(settings.seed ^ 0x5eed);
    let mut train_config = standard_train_config(kind, settings).with_eval_every(eval_every);
    // The paper evaluates KBGAN/NSCaching within a fixed epoch budget whether
    // or not they were pretrained; the pretraining epochs are charged to the
    // reported wall-clock time in the convergence figures.
    train_config.seed = settings.seed.wrapping_add(1);

    let (mut trainer, pretrain_seconds) =
        match try_resume(dataset, kind, &sampler, &label, settings, &train_config) {
            Some(trainer) => (trainer, 0.0),
            None => {
                let (model, pretrain_seconds) = if pretrain_epochs > 0 {
                    pretrain_model(
                        &model_config,
                        dataset.dataset(),
                        dataset.data(),
                        &train_config,
                        pretrain_epochs,
                    )
                } else {
                    (
                        nscaching_models::build_model(
                            &model_config,
                            dataset.num_entities(),
                            dataset.num_relations(),
                        ),
                        0.0,
                    )
                };
                let sampler = nscaching::build_sampler(
                    &sampler,
                    dataset.dataset(),
                    settings.seed.wrapping_add(2),
                );
                (
                    Trainer::new(model, sampler, dataset.data(), train_config),
                    pretrain_seconds,
                )
            }
        };

    let telemetry = settings.metrics_out.as_ref().map(|path| {
        let registry = std::sync::Arc::new(nscaching_obs::MetricsRegistry::new());
        trainer.attach_metrics(nscaching_train::TrainMetrics::register(&registry));
        (registry, path.clone())
    });

    if settings.checkpoint_every > 0 {
        let run_dir = settings
            .checkpoint_dir()
            .join(run_dir_name(&label, kind, dataset));
        let every = settings.checkpoint_every;
        match nscaching_serve::CheckpointManager::new(&run_dir, CHECKPOINT_KEEP) {
            Ok(manager) => {
                trainer.run_with(&mut |t| {
                    if t.epochs_done() % every == 0 {
                        if let Err(e) = manager.save(t) {
                            eprintln!("[{label}] checkpoint to {run_dir:?} failed: {e}");
                        }
                    }
                });
            }
            Err(e) => {
                eprintln!(
                    "[{label}] cannot open checkpoint dir {run_dir:?}: {e}; \
                     running without checkpoints"
                );
                trainer.run();
            }
        }
    } else {
        trainer.run();
    }
    if let Some((registry, path)) = telemetry {
        if let Err(e) = append_metrics(&path, &label, &registry.render()) {
            eprintln!("[{label}] cannot append --metrics-out {path:?}: {e}");
        }
    }
    let history = trainer.history().clone();
    let report = history
        .final_report
        .expect("Trainer::run always records a final report");
    let model = trainer.into_model();
    RunOutcome {
        label,
        history,
        report,
        pretrain_seconds,
        model,
    }
}

/// Append one run's metrics exposition to the `--metrics-out` file under a
/// `# run <label>` header, creating the file (and its parent directory) on
/// first use so a grid binary accumulates one section per run.
fn append_metrics(path: &std::path::Path, label: &str, exposition: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    write!(file, "# run {label}\n{exposition}")
}

/// Generate the four benchmark datasets at the configured scale, each wrapped
/// with its shared split view.
pub fn benchmark_datasets(settings: &ExperimentSettings) -> Vec<(BenchmarkFamily, BenchDataset)> {
    BenchmarkFamily::ALL
        .iter()
        .map(|family| {
            let ds = family
                .generate(settings.scale, settings.seed)
                .expect("benchmark generation succeeds");
            (*family, BenchDataset::new(ds))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_settings() -> ExperimentSettings {
        ExperimentSettings::parse(["--smoke"]).unwrap()
    }

    #[test]
    fn method_grid_matches_table_iv() {
        assert_eq!(Method::TABLE4.len(), 5);
        assert!(Method::KbGanPretrain.pretrained());
        assert!(!Method::NsCachingScratch.pretrained());
        assert_eq!(Method::NsCachingScratch.label(), "NSCaching+scratch");
        assert_eq!(Method::Bernoulli.sampler(30).display_name(), "Bernoulli");
        assert_eq!(
            Method::NsCachingPretrain.sampler(30).display_name(),
            "NSCaching"
        );
        assert_eq!(Method::KbGanScratch.sampler(30).display_name(), "KBGAN");
    }

    #[test]
    fn cache_size_scales_with_the_entity_count() {
        assert_eq!(scaled_cache_size(100), 10);
        assert_eq!(scaled_cache_size(600), 30);
        assert_eq!(scaled_cache_size(5_000), 50);
        assert_eq!(scaled_cache_size(100_000), 50);
    }

    #[test]
    fn standard_configs_follow_the_loss_family() {
        let settings = smoke_settings();
        let trans = standard_train_config(ModelKind::TransD, &settings);
        let semantic = standard_train_config(ModelKind::ComplEx, &settings);
        assert!(trans.optimizer.learning_rate < semantic.optimizer.learning_rate);
        assert_eq!(trans.epochs, settings.epochs);
        assert!(semantic.final_protocol.max_triples.is_some());
    }

    #[test]
    fn runtime_flag_pins_the_train_engine() {
        use nscaching_train::TrainRuntime;
        let settings = smoke_settings();
        let config = standard_train_config(ModelKind::TransE, &settings);
        assert_eq!(
            config.runtime,
            TrainRuntime::Auto,
            "default is the heuristic"
        );
        let mut settings = smoke_settings();
        settings.runtime = Some(TrainRuntime::Pipelined);
        settings.threads = Some(2);
        let config = standard_train_config(ModelKind::TransE, &settings);
        assert_eq!(config.runtime, TrainRuntime::Pipelined);
        assert_eq!(config.shards, 2);
    }

    #[test]
    fn pipelined_runtime_trains_end_to_end_through_the_runner() {
        use nscaching_train::TrainRuntime;
        let mut settings = smoke_settings();
        settings.runtime = Some(TrainRuntime::Pipelined);
        settings.threads = Some(2);
        let dataset = BenchDataset::new(
            BenchmarkFamily::Wn18rr
                .generate(settings.scale, settings.seed)
                .unwrap(),
        );
        let outcome = train_once(
            &dataset,
            ModelKind::TransE,
            Method::NsCachingScratch,
            &settings,
            0,
            0,
        );
        assert_eq!(outcome.history.epochs.len(), settings.epochs);
        assert!(outcome.report.combined.mrr >= 0.0);
    }

    #[test]
    fn train_once_runs_every_method_in_smoke_mode() {
        let settings = smoke_settings();
        let dataset = BenchDataset::new(
            BenchmarkFamily::Wn18rr
                .generate(settings.scale, settings.seed)
                .unwrap(),
        );
        for method in [
            Method::Bernoulli,
            Method::NsCachingScratch,
            Method::KbGanPretrain,
        ] {
            let outcome = train_once(&dataset, ModelKind::TransE, method, &settings, 1, 0);
            assert_eq!(outcome.label, method.label());
            assert!(outcome.report.combined.mrr >= 0.0);
            assert_eq!(outcome.history.epochs.len(), settings.epochs);
            if method.pretrained() {
                assert!(outcome.pretrain_seconds > 0.0);
            } else {
                assert_eq!(outcome.pretrain_seconds, 0.0);
            }
        }
    }

    #[test]
    fn checkpoint_every_writes_files_and_resume_continues_bit_for_bit() {
        let dir =
            std::env::temp_dir().join(format!("nscaching-runner-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut settings = smoke_settings();
        settings.epochs = 3;
        let dataset = BenchDataset::new(
            BenchmarkFamily::Wn18rr
                .generate(settings.scale, settings.seed)
                .unwrap(),
        );

        // Reference: straight through, no checkpointing.
        let reference = train_with_sampler(
            &dataset,
            ModelKind::TransE,
            SamplerConfig::Bernoulli,
            "ckpt-test".into(),
            0,
            &settings,
            0,
        );

        // Same run with per-epoch checkpoints: the final checkpoint is from
        // epoch 3, so re-checkpoint at epoch 2 by interrupting the budget.
        settings.checkpoint_every = 1;
        settings.checkpoint_dir = Some(dir.clone());
        let mut short = settings.clone();
        short.epochs = 2;
        let _ = train_with_sampler(
            &dataset,
            ModelKind::TransE,
            SamplerConfig::Bernoulli,
            "ckpt-test".into(),
            0,
            &short,
            0,
        );
        // Per-epoch saves land in a managed per-run directory; with
        // CHECKPOINT_KEEP = 2 both epoch checkpoints are retained.
        let run_dir = dir.join(run_dir_name("ckpt-test", ModelKind::TransE, &dataset));
        let manager = nscaching_serve::CheckpointManager::new(&run_dir, CHECKPOINT_KEEP).unwrap();
        let entries = manager.entries().unwrap();
        assert_eq!(entries.len(), 2, "both epoch checkpoints retained");

        // Resume the interrupted run to the full budget.
        settings.resume = Some(dir.clone());
        settings.checkpoint_every = 0;
        let resumed = train_with_sampler(
            &dataset,
            ModelKind::TransE,
            SamplerConfig::Bernoulli,
            "ckpt-test".into(),
            0,
            &settings,
            0,
        );
        assert_eq!(
            resumed.history.epochs.len(),
            1,
            "only the remaining epoch runs"
        );
        assert_eq!(
            resumed.report.combined.mrr.to_bits(),
            reference.report.combined.mrr.to_bits(),
            "resumed grid run must land on the uninterrupted metrics"
        );

        // Corrupt the *newest* checkpoint: resume must quarantine it, fall
        // back to the next-newest valid one (epoch 1), rerun the remaining
        // two epochs and still land on the uninterrupted metrics.
        let newest = &entries[0].path;
        let mut bytes = std::fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(newest, &bytes).unwrap();
        let fallback = train_with_sampler(
            &dataset,
            ModelKind::TransE,
            SamplerConfig::Bernoulli,
            "ckpt-test".into(),
            0,
            &settings,
            0,
        );
        assert_eq!(
            fallback.history.epochs.len(),
            2,
            "fallback resumes the epoch-1 checkpoint, so two epochs remain"
        );
        assert_eq!(
            fallback.report.combined.mrr.to_bits(),
            reference.report.combined.mrr.to_bits(),
            "fallback resume must land on the uninterrupted metrics"
        );
        assert_eq!(
            manager.quarantined().unwrap().len(),
            1,
            "the corrupt newest checkpoint was quarantined, not deleted"
        );

        // A non-matching run ignores the checkpoint and starts fresh.
        let fresh = train_with_sampler(
            &dataset,
            ModelKind::DistMult,
            SamplerConfig::Bernoulli,
            "ckpt-test".into(),
            0,
            &settings,
            0,
        );
        assert_eq!(fresh.history.epochs.len(), settings.epochs);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_distinguishes_missing_from_corrupt_checkpoints() {
        let dir =
            std::env::temp_dir().join(format!("nscaching-runner-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut settings = smoke_settings();
        settings.epochs = 1;
        settings.resume = Some(dir.clone());
        let dataset = BenchDataset::new(
            BenchmarkFamily::Wn18rr
                .generate(settings.scale, settings.seed)
                .unwrap(),
        );
        let mut train_config = standard_train_config(ModelKind::TransE, &settings);
        // Match train_with_sampler's seed derivation so a good checkpoint
        // written by it is resumable through this config.
        train_config.seed = settings.seed.wrapping_add(1);
        let outcome = |settings: &ExperimentSettings| {
            resume_outcome(
                &dataset,
                ModelKind::TransE,
                &SamplerConfig::Bernoulli,
                "resume-test",
                settings,
                &train_config,
            )
        };

        // Disabled: no --resume flag at all.
        let mut disabled = settings.clone();
        disabled.resume = None;
        assert!(matches!(outcome(&disabled), ResumeOutcome::Disabled));

        // Missing: the directory exists but holds no checkpoint — a routine
        // cold start, reported as NoCheckpoint with the path it looked at.
        match outcome(&settings) {
            ResumeOutcome::NoCheckpoint(path) => {
                assert_eq!(path.parent(), Some(dir.as_path()));
                assert!(!path.exists());
            }
            _ => panic!("expected NoCheckpoint for an empty resume dir"),
        }

        // Corrupt legacy flat file: a file *is* there but is garbage — the
        // typed SnapshotError must surface so the operator learns the
        // difference. (No managed directory exists yet, so this exercises
        // the legacy single-file path.)
        let path = dir.join(checkpoint_file_name(
            "resume-test",
            ModelKind::TransE,
            &dataset,
        ));
        std::fs::write(&path, b"this is not a checkpoint").unwrap();
        match outcome(&settings) {
            ResumeOutcome::Unusable { path: p, error } => {
                assert_eq!(p, path);
                assert!(
                    matches!(error, nscaching_serve::SnapshotError::BadMagic { .. }),
                    "garbage bytes should fail the magic check, got: {error}"
                );
            }
            _ => panic!("expected Unusable for a corrupt checkpoint"),
        }
        std::fs::remove_file(&path).unwrap();

        // Write a good managed checkpoint through the real save path.
        let run_dir = dir.join(run_dir_name("resume-test", ModelKind::TransE, &dataset));
        let good = {
            settings.checkpoint_every = 1;
            settings.checkpoint_dir = Some(dir.clone());
            settings.resume = None;
            let _ = train_with_sampler(
                &dataset,
                ModelKind::TransE,
                SamplerConfig::Bernoulli,
                "resume-test".into(),
                0,
                &settings,
                0,
            );
            settings.resume = Some(dir.clone());
            settings.checkpoint_every = 0;
            let manager =
                nscaching_serve::CheckpointManager::new(&run_dir, CHECKPOINT_KEEP).unwrap();
            std::fs::read(&manager.entries().unwrap()[0].path).unwrap()
        };

        // Corrupt newest falls back to next-newest valid: plant a truncated
        // copy as a *newer* sequence number. Resume must quarantine it with
        // a typed truncation/checksum error and resume the good one.
        let torn = run_dir.join("ckpt-0000000007.ckpt");
        std::fs::write(&torn, &good[..good.len() - 7]).unwrap();
        match outcome(&settings) {
            ResumeOutcome::Resumed {
                trainer,
                path: resumed_from,
                fallbacks,
            } => {
                assert_eq!(trainer.epochs_done(), 1);
                assert_eq!(fallbacks.len(), 1, "the torn newest was quarantined");
                let (from, to, error) = &fallbacks[0];
                assert_eq!(from, &torn);
                assert!(to.exists(), "quarantined bytes are preserved");
                assert!(
                    matches!(
                        error,
                        nscaching_serve::SnapshotError::Truncated { .. }
                            | nscaching_serve::SnapshotError::ChecksumMismatch { .. }
                    ),
                    "torn checkpoint should be typed truncation/checksum, got: {error}"
                );
                assert_ne!(&resumed_from, &torn, "must fall back to the valid file");
            }
            _ => panic!("expected a fallback resume past the torn newest checkpoint"),
        }

        // All managed checkpoints corrupt: recovery has nothing valid left
        // and the newest typed error surfaces as Unusable.
        let manager = nscaching_serve::CheckpointManager::new(&run_dir, CHECKPOINT_KEEP).unwrap();
        for entry in manager.entries().unwrap() {
            std::fs::write(&entry.path, b"rotted").unwrap();
        }
        match outcome(&settings) {
            ResumeOutcome::Unusable { error, .. } => {
                assert!(
                    matches!(error, nscaching_serve::SnapshotError::BadMagic { .. }),
                    "rotted managed checkpoints should fail the magic check, got: {error}"
                );
            }
            _ => panic!("expected Unusable when every managed checkpoint is corrupt"),
        }

        // A fresh good save must resume again — and its sequence number must
        // be past every quarantined file, so "newest" stays unambiguous.
        let reborn = run_dir.join("ckpt-0000000023.ckpt");
        std::fs::write(&reborn, &good).unwrap();
        match outcome(&settings) {
            ResumeOutcome::Resumed { fallbacks, .. } => assert!(fallbacks.is_empty()),
            _ => panic!("expected a clean resume from the restored checkpoint"),
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_out_appends_one_exposition_section_per_run() {
        let dir =
            std::env::temp_dir().join(format!("nscaching-runner-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.txt");

        let mut settings = smoke_settings();
        settings.epochs = 2;
        settings.metrics_out = Some(path.clone());
        let dataset = BenchDataset::new(
            BenchmarkFamily::Wn18rr
                .generate(settings.scale, settings.seed)
                .unwrap(),
        );
        for _ in 0..2 {
            let _ = train_with_sampler(
                &dataset,
                ModelKind::TransE,
                SamplerConfig::Bernoulli,
                "metrics-test".into(),
                0,
                &settings,
                0,
            );
        }

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.matches("# run metrics-test\n").count(),
            2,
            "one header per run:\n{text}"
        );
        // Each run's section carries the per-phase timers and the epoch
        // bridge (2 epochs of the sequential smoke engine).
        assert_eq!(text.matches("nsc_train_epochs_total 2\n").count(), 2);
        assert!(text.contains("nsc_train_phase_us_count{phase=\"sample_score\"}"));
        assert!(text.contains("nsc_train_mean_loss "));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn benchmark_datasets_generates_all_four_families() {
        let settings = smoke_settings();
        let datasets = benchmark_datasets(&settings);
        assert_eq!(datasets.len(), 4);
        assert!(datasets.iter().all(|(_, ds)| !ds.train.is_empty()));
    }
}
