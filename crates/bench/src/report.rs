//! TSV result files mirrored to stdout.

use crate::settings::ExperimentSettings;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Collects rows for one experiment and writes them both to stdout and to
/// `results/<name>.tsv`.
#[derive(Debug)]
pub struct TsvReport {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TsvReport {
    /// Start a report with the given column names.
    pub fn new(name: impl Into<String>, header: &[&str]) -> Self {
        Self {
            name: name.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Experiment name (used for the output file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (must match the header length).
    pub fn push_row<S: ToString>(&mut self, row: &[S]) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row length must match the header of report {}",
            self.name
        );
        self.rows.push(row.iter().map(|v| v.to_string()).collect());
    }

    /// Render the whole report as TSV text.
    pub fn to_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Write to `settings.out_dir/<name>.tsv` and echo the table to stdout.
    /// Returns the path written.
    pub fn write(&self, settings: &ExperimentSettings) -> std::io::Result<PathBuf> {
        settings.ensure_out_dir()?;
        let path = settings.results_path(&self.name);
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(self.to_tsv().as_bytes())?;
        file.flush()?;

        println!("\n=== {} ===", self.name);
        print!("{}", self.pretty());
        println!("written to {}", path.display());
        Ok(path)
    }

    /// Column-aligned rendering for terminals.
    pub fn pretty(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_to_tsv() {
        let mut r = TsvReport::new("unit", &["a", "b"]);
        assert!(r.is_empty());
        r.push_row(&["1", "2"]);
        r.push_row(&["x", "y"]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.to_tsv(), "a\tb\n1\t2\nx\ty\n");
        assert!(r.pretty().contains("a  b"));
        assert_eq!(r.name(), "unit");
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_rows_are_rejected() {
        let mut r = TsvReport::new("unit", &["a", "b"]);
        r.push_row(&["only-one"]);
    }

    #[test]
    fn write_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("nscaching-report-{}", std::process::id()));
        let settings = ExperimentSettings::parse(["--out", dir.to_str().unwrap()]).unwrap();
        let mut r = TsvReport::new("writer-test", &["col"]);
        r.push_row(&["42"]);
        let path = r.write(&settings).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "col\n42\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn numeric_rows_are_stringified() {
        let mut r = TsvReport::new("nums", &["x", "y"]);
        r.push_row(&[1.5, 2.25]);
        assert_eq!(r.to_tsv(), "x\ty\n1.5\t2.25\n");
    }
}
