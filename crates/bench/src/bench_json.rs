//! Multi-section bench result files.
//!
//! Several benches record their headline numbers into one JSON file (e.g.
//! `pool_overhead` and `transr_projection` both write `BENCH_pool.json`), and
//! each bench may run on its own — so a writer must preserve the sections it
//! does not own. [`update_bench_section`] implements that as a
//! read-modify-write over a fixed two-level layout:
//!
//! ```json
//! {
//!   "bench": "<file stem>",
//!   "sections": {
//!     "<section>": { ...bench-specific object... }
//!   }
//! }
//! ```
//!
//! Section bodies are treated as opaque balanced-brace JSON text; the
//! reader is a tiny scanner (string- and escape-aware brace counting), which
//! is all a machine-written file needs. An unreadable or malformed file is
//! simply started over — bench records are derived data.
//!
//! Every section written through [`update_bench_section`] additionally gets
//! an `"available_parallelism"` field recording the writing host's core
//! count, so numbers recorded on narrow containers (this repo's history has
//! a 1-core 0.95× parallel-speedup entry) are self-describing instead of
//! silently misleading readers on wider hardware. Sections written by other
//! hosts keep the value of *their* writer.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Insert or replace `section` in the bench file at `path`, preserving every
/// other section. `body` must be a JSON object (`{...}`); `bench` names the
/// file's `"bench"` field. The writing host's [`available_parallelism`]
/// is recorded as the section's first field (replacing any value the caller
/// supplied).
pub fn update_bench_section(path: &Path, bench: &str, section: &str, body: &str) -> io::Result<()> {
    debug_assert!(body.trim_start().starts_with('{'), "body must be an object");
    let mut sections = std::fs::read_to_string(path)
        .ok()
        .map(|text| extract_sections(&text))
        .unwrap_or_default();
    let body = inject_parallelism(body.trim(), available_parallelism());
    sections.insert(section.to_string(), body);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"sections\": {\n");
    let last = sections.len().saturating_sub(1);
    for (i, (name, body)) in sections.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": "));
        // Re-indent the body under its key, first stripping whatever common
        // indentation it picked up from the file it was extracted from (so
        // repeated read-modify-write cycles do not indent it further).
        let dedent = body
            .lines()
            .skip(1)
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.len() - l.trim_start().len())
            .min()
            .unwrap_or(0);
        for (j, line) in body.lines().enumerate() {
            if j > 0 {
                out.push_str("\n    ");
                out.push_str(line.get(dedent..).unwrap_or(line.trim_start()));
            } else {
                out.push_str(line);
            }
        }
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

/// Core count of the writing host (what the recorded ratios could have used).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Rewrite `body` (a JSON object) so its first field is
/// `"available_parallelism": cores`, dropping any existing field of that
/// name (idempotent across read-modify-write cycles).
fn inject_parallelism(body: &str, cores: usize) -> String {
    let without = strip_field(body, "available_parallelism");
    let open = without.find('{').map(|i| i + 1).unwrap_or(0);
    let rest = without[open..].trim_start();
    let mut out = String::with_capacity(without.len() + 40);
    out.push_str(&without[..open]);
    out.push_str(&format!("\n  \"available_parallelism\": {cores}"));
    if !rest.starts_with('}') {
        out.push(',');
    }
    out.push('\n');
    out.push_str(without[open..].trim_start_matches('\n'));
    out
}

/// Remove one scalar `"name": value` field (and its trailing comma) from a
/// JSON object body, if present at the top level.
fn strip_field(body: &str, name: &str) -> String {
    let needle = format!("\"{name}\"");
    let Some(start) = body.find(&needle) else {
        return body.to_string();
    };
    let bytes = body.as_bytes();
    // Scan past the colon and the scalar value to the next comma or brace.
    let mut end = start + needle.len();
    while end < bytes.len() && bytes[end] != b',' && bytes[end] != b'}' {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b',' {
        end += 1;
    }
    // Also swallow the line's trailing newline + indentation.
    while end < bytes.len() && (bytes[end] == b'\n' || bytes[end] == b' ') {
        end += 1;
    }
    let mut head = body[..start].to_string();
    let trimmed = head.trim_end_matches([' ', '\n']).len();
    head.truncate(trimmed);
    head.push('\n');
    // Re-indent what follows.
    format!("{head}  {}", &body[end..])
}

/// Pull the `"sections"` object out of an existing bench file as raw
/// `name → body` text. Returns an empty map when the layout is not found.
fn extract_sections(text: &str) -> BTreeMap<String, String> {
    let mut sections = BTreeMap::new();
    let Some(start) = text.find("\"sections\"") else {
        return sections;
    };
    let Some(open) = text[start..].find('{').map(|i| start + i) else {
        return sections;
    };
    let bytes = text.as_bytes();
    let mut i = open + 1;
    loop {
        let Some(next) = find_next_nonspace(bytes, i) else {
            return sections;
        };
        let key_open = match bytes[next] {
            b'}' => return sections, // end of the sections object
            b'"' => next,
            _ => return sections, // malformed: bail with what we have
        };
        let Some(key_close) = find_unescaped(bytes, key_open + 1, b'"') else {
            return sections;
        };
        let key = text[key_open + 1..key_close].to_string();
        let Some(body_open) = text[key_close..].find('{').map(|j| key_close + j) else {
            return sections;
        };
        let Some(body_close) = matching_brace(bytes, body_open) else {
            return sections;
        };
        sections.insert(key, text[body_open..=body_close].to_string());
        i = body_close + 1;
        // Skip a trailing comma, if present.
        if let Some(comma) = find_next_nonspace(bytes, i) {
            if bytes[comma] == b',' {
                i = comma + 1;
            }
        }
    }
}

/// Index of the next occurrence of `needle` at or after `from`, skipping
/// backslash-escaped occurrences inside the current scan.
fn find_unescaped(bytes: &[u8], mut from: usize, needle: u8) -> Option<usize> {
    while from < bytes.len() {
        match bytes[from] {
            b'\\' => from += 2,
            b if b == needle => return Some(from),
            _ => from += 1,
        }
    }
    None
}

/// Index of the next non-whitespace byte at or after `from`.
fn find_next_nonspace(bytes: &[u8], mut from: usize) -> Option<usize> {
    while from < bytes.len() {
        if !bytes[from].is_ascii_whitespace() {
            return Some(from);
        }
        from += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`, honouring strings/escapes.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    let mut i = open;
    let mut in_string = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1,
            b'"' => in_string = !in_string,
            b'{' if !in_string => depth += 1,
            b'}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nscaching-bench-json-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sections_accumulate_across_writers() {
        let path = tempfile("accumulate.json");
        let _ = std::fs::remove_file(&path);
        update_bench_section(&path, "pool", "alpha", "{\n  \"x\": 1\n}").unwrap();
        update_bench_section(&path, "pool", "beta", "{\n  \"y\": {\"z\": 2}\n}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"alpha\""), "{text}");
        assert!(text.contains("\"beta\""), "{text}");
        assert!(text.contains("\"x\": 1"), "{text}");
        assert!(text.contains("\"z\": 2"), "{text}");
        assert!(text.contains("\"bench\": \"pool\""), "{text}");
    }

    #[test]
    fn rewriting_a_section_replaces_it_and_keeps_the_rest() {
        let path = tempfile("replace.json");
        let _ = std::fs::remove_file(&path);
        update_bench_section(&path, "pool", "alpha", "{ \"v\": \"old\" }").unwrap();
        update_bench_section(&path, "pool", "beta", "{ \"kept\": true }").unwrap();
        update_bench_section(&path, "pool", "alpha", "{ \"v\": \"new\" }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("old"), "{text}");
        assert!(text.contains("\"v\": \"new\""), "{text}");
        assert!(text.contains("\"kept\": true"), "{text}");
    }

    #[test]
    fn round_trip_survives_strings_with_braces_and_escapes() {
        let path = tempfile("tricky.json");
        let _ = std::fs::remove_file(&path);
        let tricky = "{ \"note\": \"a } brace and a \\\" quote\" }";
        update_bench_section(&path, "pool", "tricky", tricky).unwrap();
        update_bench_section(&path, "pool", "other", "{ \"n\": 3 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("a } brace"), "{text}");
        assert!(text.contains("\"n\": 3"), "{text}");
    }

    #[test]
    fn every_written_section_records_available_parallelism() {
        let path = tempfile("cores.json");
        let _ = std::fs::remove_file(&path);
        update_bench_section(&path, "pool", "alpha", "{\n  \"x\": 1\n}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let expected = format!("\"available_parallelism\": {}", available_parallelism());
        assert!(text.contains(&expected), "{text}");
        assert!(text.contains("\"x\": 1"), "{text}");
    }

    #[test]
    fn parallelism_injection_is_idempotent() {
        let path = tempfile("cores-idem.json");
        let _ = std::fs::remove_file(&path);
        // A body that already carries a (stale) value gets exactly one fresh
        // field, not two.
        update_bench_section(
            &path,
            "pool",
            "alpha",
            "{\n  \"available_parallelism\": 999,\n  \"x\": 1\n}",
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("available_parallelism").count(), 1, "{text}");
        assert!(!text.contains("999"), "{text}");
        assert!(text.contains("\"x\": 1"), "{text}");
        // Rewriting the same section keeps it single.
        update_bench_section(
            &path,
            "pool",
            "alpha",
            "{\n  \"available_parallelism\": 999,\n  \"x\": 2\n}",
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("available_parallelism").count(), 1, "{text}");
        assert!(text.contains("\"x\": 2"), "{text}");
    }

    #[test]
    fn malformed_existing_files_are_started_over() {
        let path = tempfile("malformed.json");
        std::fs::write(&path, "not json at all").unwrap();
        update_bench_section(&path, "pool", "alpha", "{ \"ok\": 1 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\": 1"), "{text}");
        assert!(!text.contains("not json"), "{text}");
    }
}
