//! Property-based tests for the numeric substrate.

use nscaching_math::*;
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3f64, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn softmax_is_a_probability_distribution(xs in prop::collection::vec(-50.0f64..50.0, 1..64)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| *v >= 0.0 && *v <= 1.0));
    }

    #[test]
    fn log_sum_exp_bounds(xs in prop::collection::vec(-50.0f64..50.0, 1..64)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-9);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn l2_norm_triangle_inequality(x in finite_vec(16), y in finite_vec(16)) {
        let s = add(&x, &y);
        prop_assert!(l2_norm(&s) <= l2_norm(&x) + l2_norm(&y) + 1e-9);
    }

    #[test]
    fn dot_is_commutative(x in finite_vec(8), y in finite_vec(8)) {
        prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-9);
    }

    #[test]
    fn normalize_gives_unit_norm(mut x in finite_vec(12)) {
        // ensure not all zeros
        x[0] += 1.0;
        normalize_l2(&mut x);
        prop_assert!((l2_norm(&x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_sampling_yields_distinct(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = seeded_rng(seed);
        let picks = sample_distinct_uniform(&mut rng, n, k);
        prop_assert_eq!(picks.len(), k);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(picks.iter().all(|p| *p < n));
    }

    #[test]
    fn weighted_without_replacement_is_distinct_and_in_range(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..40),
        k in 0usize..60,
    ) {
        let mut rng = seeded_rng(seed);
        let picks = sample_without_replacement_weighted(&mut rng, &weights, k);
        prop_assert_eq!(picks.len(), k.min(weights.len()));
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picks.len());
        prop_assert!(picks.iter().all(|p| *p < weights.len()));
    }

    #[test]
    fn ccdf_is_bounded_and_monotone(samples in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let c = Ccdf::from_samples(&samples);
        let grid = c.default_grid(32);
        let vals = c.evaluate(&grid);
        for w in vals.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        for (_, p) in vals {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn top_k_returns_the_largest(xs in prop::collection::vec(-100.0f64..100.0, 1..64), k in 1usize..64) {
        let idx = top_k_indices(&xs, k);
        let k = k.min(xs.len());
        prop_assert_eq!(idx.len(), k);
        // every returned element must be >= every non-returned element
        let chosen: Vec<f64> = idx.iter().map(|&i| xs[i]).collect();
        let min_chosen = chosen.iter().cloned().fold(f64::INFINITY, f64::min);
        for (i, &x) in xs.iter().enumerate() {
            if !idx.contains(&i) {
                prop_assert!(x <= min_chosen + 1e-12);
            }
        }
    }

    #[test]
    fn online_stats_mean_is_within_min_max(samples in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    // ---- 8-lane kernel equivalence vs the scalar reference -----------------
    //
    // The unrolled kernels reassociate the reduction (16 accumulator lanes
    // folded in ascending order, then a sequential tail); on embedding-scale
    // operands they must agree with the naive left-to-right scalar loop to
    // 1e-12. Lengths 0..96 cover every chunking path: empty, sub-block,
    // exact blocks and remainders.

    #[test]
    fn dot_matches_the_scalar_reference(
        pairs in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..96),
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert!((dot(&x, &y) - reference).abs() <= 1e-12);
    }

    #[test]
    fn l1_distance_matches_the_scalar_reference(
        pairs in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..96),
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!((l1_distance(&x, &y) - reference).abs() <= 1e-12);
    }

    #[test]
    fn l1_sum_matches_the_scalar_reference(
        pairs in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..96),
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| (a + b).abs()).sum();
        prop_assert!((l1_sum(&x, &y) - reference).abs() <= 1e-12);
    }

    #[test]
    fn l1_combine_matches_the_scalar_reference(
        triples in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 0..96),
        head_side in any::<bool>(),
        c in -2.0f64..2.0,
    ) {
        let sign = if head_side { 1.0 } else { -1.0 };
        let mut q = Vec::new();
        let mut e = Vec::new();
        let mut w = Vec::new();
        for (a, b, ww) in triples {
            q.push(a);
            e.push(b);
            w.push(ww);
        }
        let reference: f64 = (0..q.len())
            .map(|i| (q[i] + sign * e[i] + c * w[i]).abs())
            .sum();
        prop_assert!((l1_combine(&q, &e, &w, sign, c) - reference).abs() <= 1e-12);
    }
}
