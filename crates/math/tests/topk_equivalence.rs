//! Equivalence proptests for the partial-selection top-k kernel.
//!
//! [`top_k_indices_into`] (introselect partition + prefix sort) must be
//! **bit-identical** — same index set, same order, same tie-breaks — to the
//! retained full-sort oracle [`top_k_indices_sort_into`] for every `(xs, k)`,
//! including the adversarial regimes where a partial-selection bug would
//! hide:
//!
//! * ragged `k` vs `|xs|` (`k = 0`, `k = |xs|`, `k > |xs|`, `k = |xs| − 1`);
//! * *tie storms* — values drawn from a tiny discrete set so the selection
//!   boundary almost always falls inside a tie group and only the
//!   lower-index-first contract decides who survives;
//! * duplicated extremes (every element equal).

use nscaching_math::{top_k_indices_into, top_k_indices_sort_into};
use proptest::prelude::*;

fn assert_identical(xs: &[f64], k: usize) -> Result<(), TestCaseError> {
    let mut fast = Vec::new();
    let mut oracle = Vec::new();
    top_k_indices_into(xs, k, &mut fast);
    top_k_indices_sort_into(xs, k, &mut oracle);
    prop_assert_eq!(&fast, &oracle);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quickselect_equals_the_sort_oracle_on_continuous_scores(
        xs in prop::collection::vec(-1e3f64..1e3, 0..300),
        k in 0usize..350,
    ) {
        assert_identical(&xs, k)?;
    }

    #[test]
    fn quickselect_equals_the_sort_oracle_under_tie_storms(
        // 2–4 distinct values over up to 300 slots: almost every selection
        // boundary lands inside a tie group.
        raw in prop::collection::vec(0u32..4, 1..300),
        k in 0usize..350,
    ) {
        let xs: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        assert_identical(&xs, k)?;
    }

    #[test]
    fn quickselect_equals_the_sort_oracle_at_the_ragged_edges(
        xs in prop::collection::vec(-10.0f64..10.0, 1..64),
    ) {
        for k in [0, 1, xs.len().saturating_sub(1), xs.len(), xs.len() + 1, 2 * xs.len()] {
            assert_identical(&xs, k)?;
        }
    }

    #[test]
    fn quickselect_is_exact_on_all_equal_values(
        len in 1usize..200,
        k in 0usize..220,
        value in -5.0f64..5.0,
    ) {
        // The degenerate single-tie-group case: the answer must be the first
        // min(k, len) indices in ascending order.
        let xs = vec![value; len];
        let mut fast = Vec::new();
        top_k_indices_into(&xs, k, &mut fast);
        let expect: Vec<usize> = (0..k.min(len)).collect();
        prop_assert_eq!(fast, expect);
        assert_identical(&xs, k)?;
    }
}
