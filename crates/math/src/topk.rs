//! Top-k selection over score slices.
//!
//! Used by the "top sampling" / "top update" ablations of Section IV-C and by
//! the link-prediction ranker.

use std::cmp::Ordering;

/// Index of the maximum element (ties broken towards the lower index).
/// Returns `None` for an empty slice; NaNs are never selected unless every
/// entry is NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            None => best = Some((i, x)),
            Some((_, b)) if x > b => best = Some((i, x)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
        .or(if xs.is_empty() { None } else { Some(0) })
}

/// Indices of the `k` largest values, ordered from largest to smallest.
///
/// Ties are broken towards the lower index so the result is deterministic.
/// If `k >= xs.len()` the result is a full argsort by descending value.
pub fn top_k_indices(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    top_k_indices_into(xs, k, &mut idx);
    idx
}

/// In-place variant of [`top_k_indices`]: clears `out`, fills it with the
/// indices of the `k` largest values (largest first, ties towards the lower
/// index) and allocates nothing once `out` has grown to `xs.len()` capacity.
pub fn top_k_indices_into(xs: &[f64], k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(xs.len());
    if k == 0 {
        return;
    }
    out.extend(0..xs.len());
    out.sort_unstable_by(|&a, &b| cmp_desc(xs[a], xs[b]).then(a.cmp(&b)));
    out.truncate(k);
}

/// Counts produced by one [`rank_contenders_into`] scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankScan {
    /// Entries strictly greater than the reference value.
    pub greater: usize,
    /// Entries exactly equal to the reference value.
    pub ties: usize,
}

impl RankScan {
    /// The 1-based competition rank implied by the counts, with half-credit
    /// ties (the ranking convention of the link-prediction protocol).
    pub fn rank(&self) -> f64 {
        1.0 + self.greater as f64 + self.ties as f64 / 2.0
    }
}

/// One-pass competition-rank scan: count the entries of `xs` that can affect
/// the rank of `value` — strictly greater entries and ties — and collect
/// those *contender* indices into `out` (cleared first, in ascending index
/// order). The entry at index `skip` (the true entity's own score) and NaNs
/// are ignored.
///
/// This is the heart of the ranker's top-k early-termination path: any
/// downstream per-candidate work that cannot change the rank — in the
/// filtered protocol, the false-negative hash probe — only needs to run on
/// the contenders, so the scan over the remaining `|E| − |out|` entities
/// terminates at a float compare. The counts (and therefore
/// [`RankScan::rank`]) are exactly those of a full scan.
pub fn rank_contenders_into(xs: &[f64], value: f64, skip: usize, out: &mut Vec<usize>) -> RankScan {
    out.clear();
    let mut scan = RankScan {
        greater: 0,
        ties: 0,
    };
    // A NaN reference value compares false against everything, so a full scan
    // would count no competitors: rank 1 with no contenders.
    if value.is_nan() {
        return scan;
    }
    for (i, &x) in xs.iter().enumerate() {
        if i == skip || x.is_nan() || x < value {
            continue;
        }
        if x > value {
            scan.greater += 1;
        } else {
            scan.ties += 1;
        }
        out.push(i);
    }
    scan
}

/// Number of entries strictly greater than `value`, plus the number of earlier
/// ties — i.e. the 1-based competition rank of `value` among `xs ∪ {value}`
/// when `value` itself is *not* a member of `xs`.
///
/// The link-prediction protocol ranks the positive entity against all
/// corrupted candidates; with `rank = 1 + #{candidates with score > value}`
/// (ties counted as half to avoid systematic bias, matching common practice).
pub fn rank_against(xs: &[f64], value: f64) -> f64 {
    let mut greater = 0usize;
    let mut ties = 0usize;
    for &x in xs {
        if x.is_nan() {
            continue;
        }
        if x > value {
            greater += 1;
        } else if x == value {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

fn cmp_desc(a: f64, b: f64) -> Ordering {
    b.partial_cmp(&a).unwrap_or(Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_breaks_ties_towards_lower_index() {
        assert_eq!(argmax(&[2.0, 7.0, 7.0]), Some(1));
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 1.0, 0.5]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn top_k_orders_descending() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&xs, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&xs, 10), vec![1, 3, 2, 0]);
        assert!(top_k_indices(&xs, 0).is_empty());
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let xs = [1.0, 1.0, 1.0];
        assert_eq!(top_k_indices(&xs, 2), vec![0, 1]);
    }

    #[test]
    fn rank_contenders_matches_rank_against_and_collects_indices() {
        let xs = [0.5, 2.0, 1.0, 3.0, f64::NAN, 1.0];
        let mut out = Vec::new();
        // skip index 2 (pretend it is the true entity holding value 1.0)
        let scan = rank_contenders_into(&xs, 1.0, 2, &mut out);
        assert_eq!(scan.greater, 2, "2.0 and 3.0 beat the value");
        assert_eq!(scan.ties, 1, "index 5 ties");
        assert_eq!(out, vec![1, 3, 5]);
        assert_eq!(scan.rank(), 1.0 + 2.0 + 0.5);
        // counts agree with the full-scan helper once the skipped entry and
        // its tie handling are accounted for
        let without_skip: Vec<f64> = [0.5, 2.0, 3.0, f64::NAN, 1.0].to_vec();
        assert_eq!(scan.rank(), rank_against(&without_skip, 1.0));
    }

    #[test]
    fn rank_contenders_with_no_contenders_is_rank_one() {
        let xs = [0.1, 0.2, 9.0];
        let mut out = Vec::new();
        let scan = rank_contenders_into(&xs, 9.0, 2, &mut out);
        assert_eq!(scan.rank(), 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn rank_against_counts_strictly_greater_and_half_ties() {
        assert_eq!(rank_against(&[0.5, 2.0, 3.0], 1.0), 3.0);
        assert_eq!(rank_against(&[], 1.0), 1.0);
        // one greater, one equal -> 1 + 1 + 0.5
        assert_eq!(rank_against(&[2.0, 1.0], 1.0), 2.5);
        // NaN candidates are ignored
        assert_eq!(rank_against(&[f64::NAN, 2.0], 1.0), 2.0);
    }
}
