//! Top-k selection over score slices.
//!
//! Used by the "top sampling" / "top update" ablations of Section IV-C and by
//! the link-prediction ranker.

use std::cmp::Ordering;

/// Index of the maximum element (ties broken towards the lower index).
/// Returns `None` for an empty slice; NaNs are never selected unless every
/// entry is NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            None => best = Some((i, x)),
            Some((_, b)) if x > b => best = Some((i, x)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
        .or(if xs.is_empty() { None } else { Some(0) })
}

/// Indices of the `k` largest values, ordered from largest to smallest.
///
/// Ties are broken towards the lower index so the result is deterministic.
/// If `k >= xs.len()` the result is a full argsort by descending value.
pub fn top_k_indices(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    top_k_indices_into(xs, k, &mut idx);
    idx
}

/// In-place variant of [`top_k_indices`]: clears `out`, fills it with the
/// indices of the `k` largest values (largest first, ties towards the lower
/// index) and allocates nothing once `out` has grown to `xs.len()` capacity.
pub fn top_k_indices_into(xs: &[f64], k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(xs.len());
    if k == 0 {
        return;
    }
    out.extend(0..xs.len());
    out.sort_unstable_by(|&a, &b| cmp_desc(xs[a], xs[b]).then(a.cmp(&b)));
    out.truncate(k);
}

/// Number of entries strictly greater than `value`, plus the number of earlier
/// ties — i.e. the 1-based competition rank of `value` among `xs ∪ {value}`
/// when `value` itself is *not* a member of `xs`.
///
/// The link-prediction protocol ranks the positive entity against all
/// corrupted candidates; with `rank = 1 + #{candidates with score > value}`
/// (ties counted as half to avoid systematic bias, matching common practice).
pub fn rank_against(xs: &[f64], value: f64) -> f64 {
    let mut greater = 0usize;
    let mut ties = 0usize;
    for &x in xs {
        if x.is_nan() {
            continue;
        }
        if x > value {
            greater += 1;
        } else if x == value {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

fn cmp_desc(a: f64, b: f64) -> Ordering {
    b.partial_cmp(&a).unwrap_or(Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_breaks_ties_towards_lower_index() {
        assert_eq!(argmax(&[2.0, 7.0, 7.0]), Some(1));
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 1.0, 0.5]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn top_k_orders_descending() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&xs, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&xs, 10), vec![1, 3, 2, 0]);
        assert!(top_k_indices(&xs, 0).is_empty());
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let xs = [1.0, 1.0, 1.0];
        assert_eq!(top_k_indices(&xs, 2), vec![0, 1]);
    }

    #[test]
    fn rank_against_counts_strictly_greater_and_half_ties() {
        assert_eq!(rank_against(&[0.5, 2.0, 3.0], 1.0), 3.0);
        assert_eq!(rank_against(&[], 1.0), 1.0);
        // one greater, one equal -> 1 + 1 + 0.5
        assert_eq!(rank_against(&[2.0, 1.0], 1.0), 2.5);
        // NaN candidates are ignored
        assert_eq!(rank_against(&[f64::NAN, 2.0], 1.0), 2.0);
    }
}
