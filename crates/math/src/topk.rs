//! Top-k selection over score slices.
//!
//! Used by the "top sampling" / "top update" ablations of Section IV-C, by
//! the link-prediction ranker, and by the serving engine's top-k miss path.
//!
//! # The partial-selection kernel
//!
//! [`top_k_indices_into`] is the serving miss path's selection kernel. It
//! used to be a full argsort (`O(|E| log |E|)` per query) truncated to `k`;
//! it is now **partial selection**: an introselect
//! (`select_nth_unstable_by`, quickselect with a median-of-medians fallback)
//! partitions the index buffer so the `k` winners occupy the prefix in
//! `O(|E|)` expected time, and only that prefix is sorted — `O(|E| + k log
//! k)` overall. For the serving workload (`|E|` in the tens of thousands,
//! `k` around 10) the selection, not the scoring scan, dominated the miss
//! path; see the `topk_miss_path` section of `BENCH_serve.json`.
//!
//! The tie contract is **bit-identical** to the old sort: largest value
//! first, ties broken towards the lower index. The comparator
//! ([`cmp_desc`]`.then(index)`) is a strict total order over indices, so the
//! top-`k` set and its order are unique — partial selection cannot disagree
//! with the sort. [`top_k_indices_sort_into`] retains the sort-based kernel
//! as the equivalence oracle (property-tested in `tests/topk_equivalence.rs`)
//! and as the bench baseline.

use std::cmp::Ordering;

/// Index of the maximum element (ties broken towards the lower index).
/// Returns `None` for an empty slice; NaNs are never selected unless every
/// entry is NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            None => best = Some((i, x)),
            Some((_, b)) if x > b => best = Some((i, x)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
        .or(if xs.is_empty() { None } else { Some(0) })
}

/// Indices of the `k` largest values, ordered from largest to smallest.
///
/// Ties are broken towards the lower index so the result is deterministic.
/// If `k >= xs.len()` the result is a full argsort by descending value.
pub fn top_k_indices(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    top_k_indices_into(xs, k, &mut idx);
    idx
}

/// In-place variant of [`top_k_indices`]: clears `out`, fills it with the
/// indices of the `k` largest values (largest first, ties towards the lower
/// index) and allocates nothing once `out` has grown to `xs.len()` capacity.
///
/// Partial selection, `O(|xs| + k log k)`: when `k < xs.len()` the index
/// buffer is partitioned around the `k`-th order statistic first and only
/// the winning prefix is sorted. Output is bit-identical to
/// [`top_k_indices_sort_into`] (the comparator is a strict total order, so
/// the answer is unique; proptested in `tests/topk_equivalence.rs`).
pub fn top_k_indices_into(xs: &[f64], k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(xs.len());
    if k == 0 {
        return;
    }
    out.extend(0..xs.len());
    if k < out.len() {
        out.select_nth_unstable_by(k - 1, |&a, &b| cmp_desc(xs[a], xs[b]).then(a.cmp(&b)));
        out.truncate(k);
    }
    out.sort_unstable_by(|&a, &b| cmp_desc(xs[a], xs[b]).then(a.cmp(&b)));
}

/// The retired full-sort top-k kernel, kept as the equivalence oracle for
/// [`top_k_indices_into`] and as the miss-path bench baseline: sort every
/// index by descending value (ties towards the lower index), truncate to
/// `k`. `O(|xs| log |xs|)` regardless of `k`.
pub fn top_k_indices_sort_into(xs: &[f64], k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(xs.len());
    if k == 0 {
        return;
    }
    out.extend(0..xs.len());
    out.sort_unstable_by(|&a, &b| cmp_desc(xs[a], xs[b]).then(a.cmp(&b)));
    out.truncate(k);
}

/// Counts produced by one [`rank_contenders_into`] scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankScan {
    /// Entries strictly greater than the reference value.
    pub greater: usize,
    /// Entries exactly equal to the reference value.
    pub ties: usize,
}

impl RankScan {
    /// The 1-based competition rank implied by the counts, with half-credit
    /// ties (the ranking convention of the link-prediction protocol).
    pub fn rank(&self) -> f64 {
        1.0 + self.greater as f64 + self.ties as f64 / 2.0
    }
}

/// One-pass competition-rank scan: count the entries of `xs` that can affect
/// the rank of `value` — strictly greater entries and ties — and collect
/// those *contender* indices into `out` (cleared first, in ascending index
/// order). The entry at index `skip` (the true entity's own score) and NaNs
/// are ignored.
///
/// This is the heart of the ranker's top-k early-termination path: any
/// downstream per-candidate work that cannot change the rank — in the
/// filtered protocol, the false-negative hash probe — only needs to run on
/// the contenders, so the scan over the remaining `|E| − |out|` entities
/// terminates at a float compare. The counts (and therefore
/// [`RankScan::rank`]) are exactly those of a full scan.
pub fn rank_contenders_into(xs: &[f64], value: f64, skip: usize, out: &mut Vec<usize>) -> RankScan {
    out.clear();
    let mut scan = RankScan {
        greater: 0,
        ties: 0,
    };
    // A NaN reference value compares false against everything, so a full scan
    // would count no competitors: rank 1 with no contenders.
    if value.is_nan() {
        return scan;
    }
    for (i, &x) in xs.iter().enumerate() {
        if i == skip || x.is_nan() || x < value {
            continue;
        }
        if x > value {
            scan.greater += 1;
        } else {
            scan.ties += 1;
        }
        out.push(i);
    }
    scan
}

/// Number of entries strictly greater than `value`, plus the number of earlier
/// ties — i.e. the 1-based competition rank of `value` among `xs ∪ {value}`
/// when `value` itself is *not* a member of `xs`.
///
/// The link-prediction protocol ranks the positive entity against all
/// corrupted candidates; with `rank = 1 + #{candidates with score > value}`
/// (ties counted as half to avoid systematic bias, matching common practice).
pub fn rank_against(xs: &[f64], value: f64) -> f64 {
    let mut greater = 0usize;
    let mut ties = 0usize;
    for &x in xs {
        if x.is_nan() {
            continue;
        }
        if x > value {
            greater += 1;
        } else if x == value {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

/// Descending score comparator shared by every top-k consumer (the selection
/// kernels here, the serve-side ranking helpers, the eval ranker oracles):
/// larger values order first. This is a strict **total** order — NaNs form
/// their own equivalence class ordered after every real number (a NaN score
/// can therefore never displace a real candidate) — which partial selection
/// requires: `select_nth_unstable_by` and `sort_unstable_by` must see
/// consistent answers or the partition and the sort could disagree. For
/// NaN-free inputs it is exactly `b.partial_cmp(&a)`.
pub fn cmp_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => b.partial_cmp(&a).expect("both are non-NaN"),
        (true, true) => Ordering::Equal,
        // NaN sorts after (is "smaller than") every real value.
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_breaks_ties_towards_lower_index() {
        assert_eq!(argmax(&[2.0, 7.0, 7.0]), Some(1));
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 1.0, 0.5]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn top_k_orders_descending() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&xs, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&xs, 10), vec![1, 3, 2, 0]);
        assert!(top_k_indices(&xs, 0).is_empty());
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let xs = [1.0, 1.0, 1.0];
        assert_eq!(top_k_indices(&xs, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_matches_the_sort_oracle_on_dense_ties() {
        // A handful of distinct values over a longer slice: the partial
        // selection must cut tie groups at exactly the same indices as the
        // full sort.
        let xs: Vec<f64> = (0..97).map(|i| ((i * 7) % 5) as f64).collect();
        let mut fast = Vec::new();
        let mut oracle = Vec::new();
        for k in [0, 1, 2, 5, 31, 96, 97, 200] {
            top_k_indices_into(&xs, k, &mut fast);
            top_k_indices_sort_into(&xs, k, &mut oracle);
            assert_eq!(fast, oracle, "k = {k}");
        }
    }

    #[test]
    fn top_k_never_selects_nan_over_a_real_value() {
        let xs = [f64::NAN, 1.0, f64::NAN, 3.0, 2.0];
        assert_eq!(top_k_indices(&xs, 3), vec![3, 4, 1]);
        // With k beyond the real values, NaNs fill the tail in index order.
        assert_eq!(top_k_indices(&xs, 5), vec![3, 4, 1, 0, 2]);
    }

    #[test]
    fn cmp_desc_is_a_total_order_over_nan() {
        assert_eq!(cmp_desc(2.0, 1.0), Ordering::Less, "larger orders first");
        assert_eq!(cmp_desc(1.0, 2.0), Ordering::Greater);
        assert_eq!(cmp_desc(1.0, 1.0), Ordering::Equal);
        assert_eq!(cmp_desc(f64::NAN, f64::NEG_INFINITY), Ordering::Greater);
        assert_eq!(cmp_desc(f64::NEG_INFINITY, f64::NAN), Ordering::Less);
        assert_eq!(cmp_desc(f64::NAN, f64::NAN), Ordering::Equal);
    }

    #[test]
    fn rank_contenders_matches_rank_against_and_collects_indices() {
        let xs = [0.5, 2.0, 1.0, 3.0, f64::NAN, 1.0];
        let mut out = Vec::new();
        // skip index 2 (pretend it is the true entity holding value 1.0)
        let scan = rank_contenders_into(&xs, 1.0, 2, &mut out);
        assert_eq!(scan.greater, 2, "2.0 and 3.0 beat the value");
        assert_eq!(scan.ties, 1, "index 5 ties");
        assert_eq!(out, vec![1, 3, 5]);
        assert_eq!(scan.rank(), 1.0 + 2.0 + 0.5);
        // counts agree with the full-scan helper once the skipped entry and
        // its tie handling are accounted for
        let without_skip: Vec<f64> = [0.5, 2.0, 3.0, f64::NAN, 1.0].to_vec();
        assert_eq!(scan.rank(), rank_against(&without_skip, 1.0));
    }

    #[test]
    fn rank_contenders_with_no_contenders_is_rank_one() {
        let xs = [0.1, 0.2, 9.0];
        let mut out = Vec::new();
        let scan = rank_contenders_into(&xs, 9.0, 2, &mut out);
        assert_eq!(scan.rank(), 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn rank_against_counts_strictly_greater_and_half_ties() {
        assert_eq!(rank_against(&[0.5, 2.0, 3.0], 1.0), 3.0);
        assert_eq!(rank_against(&[], 1.0), 1.0);
        // one greater, one equal -> 1 + 1 + 0.5
        assert_eq!(rank_against(&[2.0, 1.0], 1.0), 2.5);
        // NaN candidates are ignored
        assert_eq!(rank_against(&[f64::NAN, 2.0], 1.0), 2.0);
    }
}
