//! Sampling primitives.
//!
//! Three samplers matter for the paper:
//!
//! * uniform sampling of `N2` distinct entities when refreshing the cache
//!   (Algorithm 3, step 2) — [`sample_distinct_uniform`];
//! * importance sampling *without replacement* of `N1` entries proportionally
//!   to `exp(score)` (Algorithm 3, steps 5–9) —
//!   [`sample_without_replacement_weighted`];
//! * single weighted draws for the KBGAN generator and for the "IS sampling
//!   from cache" ablation — [`sample_one_weighted`] / [`WeightedIndex`].
//!
//! An [`AliasTable`] is provided for the Zipf-like entity popularity used by
//! the synthetic dataset generator (O(1) draws from a fixed discrete
//! distribution), and a [`ReservoirSampler`] for streaming sub-sampling in the
//! instrumentation code.

use rand::Rng;

/// Sample `k` distinct indices uniformly from `0..n`.
///
/// Uses Floyd's algorithm, which performs exactly `k` RNG draws and needs
/// `O(k)` memory. Panics if `k > n`.
pub fn sample_distinct_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let mut chosen = Vec::with_capacity(k);
    sample_distinct_uniform_into(rng, n, k, &mut chosen);
    chosen
}

/// In-place variant of [`sample_distinct_uniform`]: clears `out` and fills it
/// with `k` distinct indices from `0..n`, allocating nothing once `out` has
/// grown to capacity `k`. Panics if `k > n`.
pub fn sample_distinct_uniform_into<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    out: &mut Vec<usize>,
) {
    assert!(
        k <= n,
        "cannot sample {k} distinct values from a pool of {n}"
    );
    out.clear();
    // Floyd's algorithm produces a set; we then shuffle lightly by insertion
    // order which is already random enough for our callers (order does not
    // matter for cache candidates).
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if out.contains(&t) {
            out.push(j);
        } else {
            out.push(t);
        }
    }
}

/// Draw one index from `0..weights.len()` with probability proportional to
/// `weights[i]`. All weights must be non-negative and at least one must be
/// positive; otherwise the draw falls back to uniform.
pub fn sample_one_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if *w > 0.0 && w.is_finite() {
            if u < *w {
                return i;
            }
            u -= *w;
        }
    }
    // Floating-point slack: return the last positive-weight index.
    weights
        .iter()
        .rposition(|w| *w > 0.0 && w.is_finite())
        .unwrap_or(weights.len() - 1)
}

/// Sample `k` *distinct* indices without replacement with probability
/// proportional to `weights`, following Algorithm 3 of the paper: repeatedly
/// draw from the renormalised remaining weights and remove the winner.
///
/// If fewer than `k` strictly positive weights exist, the remaining slots are
/// filled uniformly from the not-yet-chosen indices, so the result always has
/// exactly `min(k, weights.len())` entries.
pub fn sample_without_replacement_weighted<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut scratch = weights.to_vec();
    let mut out = Vec::with_capacity(k.min(weights.len()));
    sample_without_replacement_weighted_into(rng, &mut scratch, k, &mut out);
    out
}

/// In-place variant of [`sample_without_replacement_weighted`].
///
/// `weights` is consumed as working storage: non-finite and negative entries
/// are zeroed up front and picked entries are marked with a negative
/// sentinel, so the call performs no heap allocation once `out` has grown to
/// capacity `k`. This is what the NSCaching cache refresh uses on its hot
/// path, where the weights buffer is a reusable scratch anyway.
pub fn sample_without_replacement_weighted_into<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &mut [f64],
    k: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    let n = weights.len();
    let k = k.min(n);
    for w in weights.iter_mut() {
        if !w.is_finite() || *w <= 0.0 {
            *w = 0.0;
        }
    }
    // Picked entries are flagged with -1 so "remaining" = non-negative.
    const PICKED: f64 = -1.0;
    for _ in 0..k {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        let idx = if total > 0.0 {
            let mut u = rng.gen_range(0.0..total);
            let mut chosen = None;
            for (i, &w) in weights.iter().enumerate() {
                if w > 0.0 {
                    if u < w {
                        chosen = Some(i);
                        break;
                    }
                    u -= w;
                }
            }
            // Floating-point slack: fall back to the last positive weight.
            chosen.unwrap_or_else(|| {
                weights
                    .iter()
                    .rposition(|w| *w > 0.0)
                    .expect("total > 0 implies a positive weight")
            })
        } else {
            // Uniform among the not-yet-picked indices.
            let remaining = weights.iter().filter(|w| **w >= 0.0).count();
            let target = rng.gen_range(0..remaining);
            weights
                .iter()
                .enumerate()
                .filter(|(_, w)| **w >= 0.0)
                .nth(target)
                .map(|(i, _)| i)
                .expect("remaining count matches filter")
        };
        weights[idx] = PICKED;
        out.push(idx);
    }
}

/// A cumulative-sum weighted index for repeated draws from a *fixed*
/// distribution (the distribution cannot be mutated after construction).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from non-negative weights. Returns `None` if the weights are
    /// empty or sum to a non-positive / non-finite value.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            let w = if w.is_finite() && *w > 0.0 { *w } else { 0.0 };
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 || !acc.is_finite() {
            return None;
        }
        Some(Self {
            cumulative,
            total: acc,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no categories.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_range(0.0..self.total);
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("non-NaN cumulative"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Walker alias table for O(1) draws from a fixed discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build an alias table from non-negative weights. Returns `None` when the
    /// weights are empty or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let scaled: Vec<f64> = weights
            .iter()
            .map(|w| {
                let w = if w.is_finite() && *w > 0.0 { *w } else { 0.0 };
                w * n as f64 / total
            })
            .collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in large.iter().chain(small.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Reservoir sampler keeping a uniform sample of up to `capacity` items from a
/// stream of unknown length (used to sub-sample negative-score observations
/// for the CCDF plots without storing every score).
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    seen: usize,
    items: Vec<T>,
}

impl<T> ReservoirSampler<T> {
    /// Create a reservoir with the given capacity (must be positive).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offer one item from the stream.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if j < self.capacity {
                self.items[j] = item;
            }
        }
    }

    /// Items currently held.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total number of items offered so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Consume the sampler and return its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use std::collections::HashSet;

    #[test]
    fn distinct_uniform_returns_distinct_in_range() {
        let mut rng = seeded_rng(10);
        for _ in 0..50 {
            let v = sample_distinct_uniform(&mut rng, 100, 20);
            assert_eq!(v.len(), 20);
            let set: HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 20);
            assert!(v.iter().all(|x| *x < 100));
        }
    }

    #[test]
    fn distinct_uniform_full_draw_is_permutation() {
        let mut rng = seeded_rng(11);
        let mut v = sample_distinct_uniform(&mut rng, 10, 10);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn distinct_uniform_rejects_oversized_request() {
        let mut rng = seeded_rng(12);
        let _ = sample_distinct_uniform(&mut rng, 3, 4);
    }

    #[test]
    fn weighted_draw_respects_proportions() {
        let mut rng = seeded_rng(13);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[sample_one_weighted(&mut rng, &weights)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_draw_with_zero_total_is_uniform_and_in_range() {
        let mut rng = seeded_rng(14);
        for _ in 0..100 {
            let i = sample_one_weighted(&mut rng, &[0.0, 0.0, 0.0]);
            assert!(i < 3);
        }
    }

    #[test]
    fn weighted_draw_ignores_nan_and_negative() {
        let mut rng = seeded_rng(15);
        for _ in 0..200 {
            let i = sample_one_weighted(&mut rng, &[f64::NAN, -1.0, 2.0]);
            assert_eq!(i, 2);
        }
    }

    #[test]
    fn without_replacement_returns_distinct_and_prefers_heavy() {
        let mut rng = seeded_rng(16);
        let mut first_counts = [0usize; 4];
        for _ in 0..20_000 {
            let picks = sample_without_replacement_weighted(&mut rng, &[1.0, 1.0, 1.0, 10.0], 2);
            assert_eq!(picks.len(), 2);
            assert_ne!(picks[0], picks[1]);
            first_counts[picks[0]] += 1;
        }
        assert!(first_counts[3] > first_counts[0] * 5);
    }

    #[test]
    fn without_replacement_handles_more_requested_than_available() {
        let mut rng = seeded_rng(17);
        let mut picks = sample_without_replacement_weighted(&mut rng, &[1.0, 2.0], 5);
        picks.sort_unstable();
        assert_eq!(picks, vec![0, 1]);
    }

    #[test]
    fn without_replacement_fills_from_zero_weights_when_needed() {
        let mut rng = seeded_rng(18);
        let picks = sample_without_replacement_weighted(&mut rng, &[0.0, 0.0, 5.0], 3);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 3);
        assert_eq!(picks[0], 2, "the only positive weight must be drawn first");
    }

    #[test]
    fn weighted_index_matches_expected_frequencies() {
        let wi = WeightedIndex::new(&[2.0, 0.0, 6.0]).unwrap();
        let mut rng = seeded_rng(19);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[wi.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_degenerate_inputs() {
        assert!(WeightedIndex::new(&[]).is_none());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_none());
        assert!(WeightedIndex::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn alias_table_matches_expected_frequencies() {
        let at = AliasTable::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut rng = seeded_rng(20);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[at.sample(&mut rng)] += 1;
        }
        let p: Vec<f64> = counts.iter().map(|c| *c as f64 / n as f64).collect();
        assert!((p[0] - 0.1).abs() < 0.01);
        assert!((p[1] - 0.2).abs() < 0.015);
        assert!((p[2] - 0.7).abs() < 0.015);
    }

    #[test]
    fn alias_table_rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0]).is_none());
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let mut rng = seeded_rng(21);
        let mut r = ReservoirSampler::new(10);
        for i in 0..5 {
            r.offer(&mut rng, i);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn reservoir_is_approximately_uniform() {
        let mut rng = seeded_rng(22);
        let mut hits = vec![0usize; 100];
        for _ in 0..2000 {
            let mut r = ReservoirSampler::new(10);
            for i in 0..100 {
                r.offer(&mut rng, i);
            }
            for &i in r.items() {
                hits[i] += 1;
            }
        }
        // Each item should be kept ~10% of the time (200 of 2000 trials).
        let min = *hits.iter().min().unwrap() as f64;
        let max = *hits.iter().max().unwrap() as f64;
        assert!(min > 120.0 && max < 300.0, "min {min} max {max}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_rejects_zero_capacity() {
        let _ = ReservoirSampler::<u32>::new(0);
    }
}
