//! Light-weight statistics: online moments, histograms, quantiles and the
//! complementary CDF used in Figure 1 of the paper.

/// Welford-style online mean / variance / min / max accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A fixed-range histogram with equal-width bins plus underflow/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Raw bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Normalised bin densities summing to the in-range fraction.
    pub fn densities(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|c| *c as f64 / self.count as f64)
            .collect()
    }
}

/// Empirical complementary cumulative distribution function
/// `F(x) = P(D ≥ x)`, exactly the quantity plotted in Figure 1 of the paper.
#[derive(Debug, Clone)]
pub struct Ccdf {
    sorted: Vec<f64>,
}

impl Ccdf {
    /// Build from raw observations (NaNs are dropped).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filtering"));
        Self { sorted }
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CCDF holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(D ≥ x)` for a single threshold.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Index of the first element >= x.
        let idx = self.sorted.partition_point(|v| *v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Evaluate the CCDF on a grid of thresholds.
    pub fn evaluate(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.at(x))).collect()
    }

    /// A uniform grid of `points` thresholds between the min and max sample.
    pub fn default_grid(&self, points: usize) -> Vec<f64> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = *self.sorted.first().expect("non-empty");
        let hi = *self.sorted.last().expect("non-empty");
        if points == 1 || hi <= lo {
            return vec![lo];
        }
        let step = (hi - lo) / (points - 1) as f64;
        (0..points).map(|i| lo + step * i as f64).collect()
    }
}

/// Exact sample quantiles (linear interpolation between order statistics).
#[derive(Debug, Clone)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Build from raw observations (NaNs are dropped).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filtering"));
        Self { sorted }
    }

    /// Quantile `q ∈ [0,1]`; returns `None` when no observations are held.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn online_stats_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn online_stats_merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before_mean = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), before_mean);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - before_mean).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 5.5, 9.999, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        let d = h.densities();
        assert!((d.iter().sum::<f64>() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn ccdf_on_known_samples() {
        let c = Ccdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!((c.at(0.0) - 1.0).abs() < 1e-12);
        assert!((c.at(2.0) - 0.75).abs() < 1e-12);
        assert!((c.at(2.5) - 0.5).abs() < 1e-12);
        assert!((c.at(4.0) - 0.25).abs() < 1e-12);
        assert!((c.at(5.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_is_monotone_decreasing_on_grid() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let c = Ccdf::from_samples(&samples);
        let grid = c.default_grid(50);
        let vals = c.evaluate(&grid);
        for w in vals.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(grid.len(), 50);
    }

    #[test]
    fn ccdf_drops_nans_and_handles_empty() {
        let c = Ccdf::from_samples(&[f64::NAN, f64::NAN]);
        assert!(c.is_empty());
        assert_eq!(c.at(0.0), 0.0);
        assert!(c.default_grid(10).is_empty());
    }

    #[test]
    fn quantiles_on_known_samples() {
        let q = Quantiles::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.median(), Some(3.0));
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(5.0));
        assert_eq!(q.quantile(0.25), Some(2.0));
        assert!(Quantiles::from_samples(&[]).median().is_none());
    }
}
