//! Deterministic random-number helpers.
//!
//! Every experiment in the paper reproduction is seeded so that tables and
//! figures can be regenerated bit-for-bit. We standardise on
//! [`rand::rngs::StdRng`] seeded from a `u64` and provide a cheap seed
//! splitter so that independent components (dataset generation, model
//! initialisation, each sampler, each worker thread) receive decorrelated
//! streams derived from a single experiment seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Capture the raw resumable state of a [`StdRng`] (checkpoint side).
///
/// [`rng_from_state`] rebuilds a generator that continues the stream exactly
/// where the captured one would have — the foundation of the trainer's
/// exact-resume guarantee (see `nscaching_serve`).
pub fn rng_state(rng: &StdRng) -> [u64; 4] {
    rng.state()
}

/// Rebuild a [`StdRng`] from a state captured by [`rng_state`] (resume side).
pub fn rng_from_state(state: [u64; 4]) -> StdRng {
    StdRng::from_state(state)
}

/// Derive a decorrelated child seed from `(seed, stream)`.
///
/// Uses the SplitMix64 finaliser, which is the standard way to expand one
/// 64-bit seed into many independent ones.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stream of decorrelated seeds derived from one master seed.
///
/// ```
/// use nscaching_math::SeedStream;
/// let mut s = SeedStream::new(42);
/// let a = s.next_seed();
/// let b = s.next_seed();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    master: u64,
    counter: u64,
}

impl SeedStream {
    /// Create a stream rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master, counter: 0 }
    }

    /// Next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = split_seed(self.master, self.counter);
        self.counter += 1;
        s
    }

    /// Next derived RNG.
    pub fn next_rng(&mut self) -> StdRng {
        seeded_rng(self.next_seed())
    }

    /// The master seed this stream was created from.
    pub fn master(&self) -> u64 {
        self.master
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_seed_is_deterministic_and_sensitive_to_stream() {
        assert_eq!(split_seed(1, 0), split_seed(1, 0));
        assert_ne!(split_seed(1, 0), split_seed(1, 1));
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn seed_stream_yields_distinct_seeds() {
        let mut s = SeedStream::new(99);
        let seeds: Vec<u64> = (0..32).map(|_| s.next_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn seed_stream_reports_master() {
        assert_eq!(SeedStream::new(5).master(), 5);
    }

    #[test]
    fn rng_state_round_trip_continues_the_stream() {
        let mut original = seeded_rng(42);
        for _ in 0..9 {
            let _ = original.gen::<u64>();
        }
        let mut resumed = rng_from_state(rng_state(&original));
        for _ in 0..32 {
            assert_eq!(original.gen::<u64>(), resumed.gen::<u64>());
        }
    }
}
