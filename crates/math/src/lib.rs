//! Numeric substrate for the NSCaching reproduction.
//!
//! The paper's algorithms only need dense vector arithmetic, a handful of
//! initialisers, stable softmax utilities, several sampling primitives
//! (weighted with and without replacement, alias tables, reservoir sampling)
//! and light-weight statistics (online moments, histograms, complementary
//! CDFs). Everything is implemented here from scratch so that the rest of the
//! workspace has no dependency on an external ML framework.
//!
//! All functions operate on `&[f64]` / `&mut [f64]` slices; embedding rows in
//! `nscaching-models` are stored contiguously and borrowed as slices, so no
//! dedicated tensor type is needed.

pub mod init;
pub mod rng;
pub mod sample;
pub mod softmax;
pub mod stats;
pub mod topk;
pub mod vecops;

pub use init::{constant_init, uniform_init, xavier_uniform};
pub use rng::{rng_from_state, rng_state, seeded_rng, split_seed, SeedStream};
pub use sample::{
    sample_distinct_uniform, sample_distinct_uniform_into, sample_one_weighted,
    sample_without_replacement_weighted, sample_without_replacement_weighted_into, AliasTable,
    ReservoirSampler, WeightedIndex,
};
pub use softmax::{log_sum_exp, softmax, softmax_in_place};
pub use stats::{Ccdf, Histogram, OnlineStats, Quantiles};
pub use topk::{
    argmax, cmp_desc, rank_contenders_into, top_k_indices, top_k_indices_into,
    top_k_indices_sort_into, RankScan,
};
pub use vecops::{
    add, add_scaled, dot, hadamard, l1_combine, l1_distance, l1_norm, l1_sum, l2_distance, l2_norm,
    normalize_l2, scale, sub,
};
