//! Numerically stable softmax utilities.
//!
//! The importance-sampling cache update (Algorithm 3 of the paper, Eq. (6))
//! samples cache entries with probability `exp(f) / Σ exp(f)`. Scores can be
//! moderately large in magnitude, so the usual max-subtraction trick is
//! applied everywhere.

/// `log(Σ exp(x_i))` computed stably. Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + s.ln()
}

/// Softmax of `xs` into a freshly allocated vector.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Softmax computed in place.
///
/// An empty slice is left untouched; a slice whose maximum is `-inf`
/// degenerates to the uniform distribution (this can happen if a caller masks
/// every entry), which is the safest behaviour for a sampler.
pub fn softmax_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        let u = 1.0 / xs.len() as f64;
        for x in xs.iter_mut() {
            *x = u;
        }
        return;
    }
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Logistic sigmoid `1 / (1 + exp(-x))`, computed stably for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log(1 + exp(x))` (softplus), computed stably.
///
/// This is the logistic loss `ℓ(α, β) = log(1 + exp(-αβ))` of the paper's
/// Eq. (2) evaluated at `x = -αβ`.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let xs = [0.1f64, -0.3, 0.7];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let xs = [1000.0, 1000.0];
        let expected = 1000.0 + 2.0_f64.ln();
        assert!((log_sum_exp(&xs) - expected).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_all_masked_falls_back_to_uniform() {
        let mut xs = vec![f64::NEG_INFINITY; 4];
        softmax_in_place(&mut xs);
        for x in xs {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_symmetry_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn softplus_matches_naive_in_stable_region_and_is_finite_elsewhere() {
        for &x in &[-3.0f64, -0.5, 0.0, 0.5, 3.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-12);
        }
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) >= 0.0);
        assert!(softplus(-100.0) < 1e-40);
    }
}
