//! Dense vector operations used by the scoring functions and optimizers.
//!
//! All binary operations assert that the operands have equal length; the
//! embedding dimension is fixed per model so mismatches are programming
//! errors, not runtime conditions.
//!
//! # Kernel layout
//!
//! The hot reduction kernels ([`dot`], [`l1_distance`], [`l1_sum`],
//! [`l1_combine`]) are written against explicit fixed-width 8-lane blocks
//! (`[f64; 8]`, one AVX-512 vector or two AVX2 ones — see [`lanes`]). Each
//! loop iteration carries **two** independent blocks, so sixteen accumulator
//! lanes break the add dependency chain and the loop saturates the FPU
//! pipelines; the fixed-size block views let LLVM keep whole blocks in vector
//! registers. The horizontal sum folds the lanes in ascending index order and
//! the tail elements sequentially, so results are a deterministic
//! reassociation of the scalar reference (the proptests in
//! `tests/proptests.rs` pin the agreement to 1e-12).

/// Scalar lanes per explicit SIMD block.
pub const LANES: usize = 8;

/// Fixed-width 8-lane building blocks of the unrolled kernels.
///
/// Every operation is a straight-line pass over a `[f64; LANES]` block —
/// exactly the shape auto-vectorisers turn into a single vector instruction
/// (or two on AVX2). Keeping the blocks explicit pins the lane count, and
/// therefore the floating-point summation order, independently of what the
/// compiler would pick on its own.
mod lanes {
    use super::LANES;

    /// View a slice of exactly `LANES` elements as a fixed-width block.
    #[inline(always)]
    pub(super) fn block(x: &[f64]) -> &[f64; LANES] {
        x.try_into().expect("exact 8-lane block")
    }

    /// `acc[i] += a[i] * b[i]` over one block.
    #[inline(always)]
    pub(super) fn mul_acc(acc: &mut [f64; LANES], a: &[f64; LANES], b: &[f64; LANES]) {
        for i in 0..LANES {
            acc[i] += a[i] * b[i];
        }
    }

    /// `acc[i] += |a[i] - b[i]|` over one block.
    #[inline(always)]
    pub(super) fn abs_diff_acc(acc: &mut [f64; LANES], a: &[f64; LANES], b: &[f64; LANES]) {
        for i in 0..LANES {
            acc[i] += (a[i] - b[i]).abs();
        }
    }

    /// `acc[i] += |a[i] + b[i]|` over one block.
    #[inline(always)]
    pub(super) fn abs_sum_acc(acc: &mut [f64; LANES], a: &[f64; LANES], b: &[f64; LANES]) {
        for i in 0..LANES {
            acc[i] += (a[i] + b[i]).abs();
        }
    }

    /// `acc[i] += |q[i] + sign·e[i] + c·w[i]|` over one block.
    #[inline(always)]
    pub(super) fn abs_combine_acc(
        acc: &mut [f64; LANES],
        q: &[f64; LANES],
        e: &[f64; LANES],
        w: &[f64; LANES],
        sign: f64,
        c: f64,
    ) {
        for i in 0..LANES {
            acc[i] += (q[i] + sign * e[i] + c * w[i]).abs();
        }
    }

    /// Horizontal sum of two accumulator blocks, lanes folded in ascending
    /// index order (block 0 first) — the deterministic reduction the kernels'
    /// bit-reproducibility contract depends on.
    #[inline(always)]
    pub(super) fn hsum(acc0: &[f64; LANES], acc1: &[f64; LANES]) -> f64 {
        acc0.iter().chain(acc1.iter()).sum()
    }
}

/// Dot product `x · y`.
///
/// Two explicit 8-lane blocks per iteration (sixteen independent accumulator
/// lanes); this is the innermost kernel of the batched candidate-scoring
/// fast path and of the TransR projection fill.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(2 * LANES);
    let mut yc = y.chunks_exact(2 * LANES);
    let mut acc0 = [0.0f64; LANES];
    let mut acc1 = [0.0f64; LANES];
    for (a, b) in (&mut xc).zip(&mut yc) {
        lanes::mul_acc(
            &mut acc0,
            lanes::block(&a[..LANES]),
            lanes::block(&b[..LANES]),
        );
        lanes::mul_acc(
            &mut acc1,
            lanes::block(&a[LANES..]),
            lanes::block(&b[LANES..]),
        );
    }
    let mut sum = lanes::hsum(&acc0, &acc1);
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        sum += a * b;
    }
    sum
}

/// Element-wise sum `x + y` into a new vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Element-wise difference `x - y` into a new vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise (Hadamard) product `x ⊙ y` into a new vector.
#[inline]
pub fn hadamard(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).collect()
}

/// In-place scaling `x ← α·x`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// In-place `y ← y + α·x` (BLAS `axpy`).
#[inline]
pub fn add_scaled(y: &mut [f64], x: &[f64], alpha: f64) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// L1 norm `‖x‖₁`.
#[inline]
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 norm `‖x‖₂`.
#[inline]
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// L1 distance `‖x − y‖₁`.
///
/// Unrolled like [`dot`]; the per-candidate kernel of the translational
/// models' batched scoring path and of the warm tail-corruption path of the
/// TransR/TransD projection cache.
#[inline]
pub fn l1_distance(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(2 * LANES);
    let mut yc = y.chunks_exact(2 * LANES);
    let mut acc0 = [0.0f64; LANES];
    let mut acc1 = [0.0f64; LANES];
    for (a, b) in (&mut xc).zip(&mut yc) {
        lanes::abs_diff_acc(
            &mut acc0,
            lanes::block(&a[..LANES]),
            lanes::block(&b[..LANES]),
        );
        lanes::abs_diff_acc(
            &mut acc1,
            lanes::block(&a[LANES..]),
            lanes::block(&b[LANES..]),
        );
    }
    let mut sum = lanes::hsum(&acc0, &acc1);
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        sum += (a - b).abs();
    }
    sum
}

/// Translational sum norm `Σᵢ |x_i + y_i|`.
///
/// The head-corruption dual of [`l1_distance`]: with a cached projection
/// `p = M_r·e` (or TransD's `e + (w_e·e)·w_r`) and a precomputed query
/// `q = r − M_r·t`, a candidate head scores `−Σᵢ |p_i + q_i|`. Same explicit
/// 8-lane block layout as the other kernels.
#[inline]
pub fn l1_sum(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(2 * LANES);
    let mut yc = y.chunks_exact(2 * LANES);
    let mut acc0 = [0.0f64; LANES];
    let mut acc1 = [0.0f64; LANES];
    for (a, b) in (&mut xc).zip(&mut yc) {
        lanes::abs_sum_acc(
            &mut acc0,
            lanes::block(&a[..LANES]),
            lanes::block(&b[..LANES]),
        );
        lanes::abs_sum_acc(
            &mut acc1,
            lanes::block(&a[LANES..]),
            lanes::block(&b[LANES..]),
        );
    }
    let mut sum = lanes::hsum(&acc0, &acc1);
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        sum += (a + b).abs();
    }
    sum
}

/// Fused translational residual norm `Σᵢ |q_i + sign·e_i + c·w_i|`.
///
/// The per-candidate kernel of the batched TransH/TransD fast paths: with a
/// precomputed query vector `q`, the hyperplane / dynamic-projection residual
/// of a candidate row `e` has exactly this shape (`sign = ∓1` for tail/head
/// corruption, `c` folding the candidate's projection scalar). Unrolled to
/// sixteen lanes like [`dot`].
#[inline]
pub fn l1_combine(q: &[f64], e: &[f64], w: &[f64], sign: f64, c: f64) -> f64 {
    debug_assert_eq!(q.len(), e.len());
    debug_assert_eq!(q.len(), w.len());
    let mut qc = q.chunks_exact(2 * LANES);
    let mut ec = e.chunks_exact(2 * LANES);
    let mut wc = w.chunks_exact(2 * LANES);
    let mut acc0 = [0.0f64; LANES];
    let mut acc1 = [0.0f64; LANES];
    for ((a, b), ww) in (&mut qc).zip(&mut ec).zip(&mut wc) {
        lanes::abs_combine_acc(
            &mut acc0,
            lanes::block(&a[..LANES]),
            lanes::block(&b[..LANES]),
            lanes::block(&ww[..LANES]),
            sign,
            c,
        );
        lanes::abs_combine_acc(
            &mut acc1,
            lanes::block(&a[LANES..]),
            lanes::block(&b[LANES..]),
            lanes::block(&ww[LANES..]),
            sign,
            c,
        );
    }
    let mut sum = lanes::hsum(&acc0, &acc1);
    for ((a, b), ww) in qc
        .remainder()
        .iter()
        .zip(ec.remainder())
        .zip(wc.remainder())
    {
        sum += (a + sign * b + c * ww).abs();
    }
    sum
}

/// L2 distance `‖x − y‖₂`.
#[inline]
pub fn l2_distance(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Normalise `x` to unit L2 norm in place. Vectors whose norm is below
/// `1e-12` are left untouched to avoid dividing by (numerical) zero.
#[inline]
pub fn normalize_l2(x: &mut [f64]) {
    let n = l2_norm(x);
    if n > 1e-12 {
        scale(x, 1.0 / n);
    }
}

/// Project `x` onto the L2 ball of radius 1: only rescale when the norm
/// exceeds one. This is the constraint used by TransE/TransH/TransD on entity
/// embeddings ("soft" unit-ball constraint).
#[inline]
pub fn project_l2_ball(x: &mut [f64]) {
    let n = l2_norm(x);
    if n > 1.0 {
        scale(x, 1.0 / n);
    }
}

/// Signum vector of `x` with `sign(0) = 0`; the subgradient of the L1 norm.
#[inline]
pub fn signum(x: &[f64]) -> Vec<f64> {
    x.iter()
        .map(|v| {
            if *v > 0.0 {
                1.0
            } else if *v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Squared L2 norm `‖x‖₂²`.
#[inline]
pub fn sq_l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_manual_expansion() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, -2.0, 3.5];
        let y = vec![0.5, 4.0, -1.0];
        let s = add(&x, &y);
        let back = sub(&s, &y);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hadamard_elementwise() {
        assert_eq!(hadamard(&[2.0, 3.0], &[4.0, -1.0]), vec![8.0, -3.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, 3.0);
        assert_eq!(x, vec![3.0, -6.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut y = vec![1.0, 1.0];
        add_scaled(&mut y, &[2.0, -4.0], 0.5);
        assert_eq!(y, vec![2.0, -1.0]);
    }

    #[test]
    fn norms_on_known_vectors() {
        assert!((l1_norm(&[3.0, -4.0]) - 7.0).abs() < 1e-12);
        assert!((l2_norm(&[3.0, -4.0]) - 5.0).abs() < 1e-12);
        assert!((sq_l2_norm(&[3.0, -4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distances_on_known_vectors() {
        assert!((l1_distance(&[1.0, 1.0], &[4.0, -3.0]) - 7.0).abs() < 1e-12);
        assert!((l2_distance(&[1.0, 1.0], &[4.0, 5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l1_sum_on_known_vectors() {
        assert!((l1_sum(&[1.0, -1.0], &[2.0, -3.0]) - 7.0).abs() < 1e-12);
        // l1_sum(x, -y) == l1_distance(x, y) on a remainder-exercising length
        let x: Vec<f64> = (0..37).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64) * -0.11 + 2.0).collect();
        let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((l1_sum(&x, &neg_y) - l1_distance(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn kernels_cover_block_and_remainder_lengths() {
        // 0 | <8 | =8 | 8..16 | =16 | 16..32 | =32 | >32: every chunking path.
        for len in [0usize, 3, 8, 11, 16, 23, 32, 41] {
            let x: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let y: Vec<f64> = (0..len).map(|i| (i as f64).cos()).collect();
            let dot_ref: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - dot_ref).abs() < 1e-12, "dot at len {len}");
            let l1_ref: f64 = x.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum();
            assert!(
                (l1_distance(&x, &y) - l1_ref).abs() < 1e-12,
                "l1_distance at len {len}"
            );
            let sum_ref: f64 = x.iter().zip(&y).map(|(a, b)| (a + b).abs()).sum();
            assert!(
                (l1_sum(&x, &y) - sum_ref).abs() < 1e-12,
                "l1_sum at len {len}"
            );
        }
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut x = vec![3.0, 4.0];
        normalize_l2(&mut x);
        assert!((l2_norm(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_leaves_zero_vector_untouched() {
        let mut x = vec![0.0, 0.0];
        normalize_l2(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn project_only_shrinks_large_vectors() {
        let mut small = vec![0.3, 0.4];
        project_l2_ball(&mut small);
        assert_eq!(small, vec![0.3, 0.4]);

        let mut large = vec![3.0, 4.0];
        project_l2_ball(&mut large);
        assert!((l2_norm(&large) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signum_handles_all_signs() {
        assert_eq!(signum(&[2.0, -0.5, 0.0]), vec![1.0, -1.0, 0.0]);
    }
}
