//! Embedding initialisers.
//!
//! The paper initialises all embeddings with the Xavier uniform initialiser
//! (Glorot & Bengio, 2010) when training from scratch. We also provide a
//! plain uniform range initialiser (used by the original TransE code,
//! `±6/√d`) and a constant initialiser for tests.

use rand::Rng;

/// Xavier/Glorot uniform initialisation for a `rows × cols` matrix stored
/// row-major in a flat `Vec<f64>`.
///
/// Entries are drawn from `U(-a, a)` with `a = sqrt(6 / (rows + cols))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Vec<f64> {
    assert!(
        rows > 0 && cols > 0,
        "xavier_uniform needs a non-empty shape"
    );
    let a = (6.0 / (rows + cols) as f64).sqrt();
    (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect()
}

/// Uniform initialisation in `[-bound, bound)` for `n` values.
pub fn uniform_init<R: Rng + ?Sized>(rng: &mut R, n: usize, bound: f64) -> Vec<f64> {
    assert!(bound > 0.0, "uniform_init bound must be positive");
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// The classic TransE initialisation bound `6/√d`.
pub fn transe_bound(dim: usize) -> f64 {
    6.0 / (dim as f64).sqrt()
}

/// Constant initialisation, mostly useful in unit tests.
pub fn constant_init(n: usize, value: f64) -> Vec<f64> {
    vec![value; n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn xavier_bound_is_respected() {
        let mut rng = seeded_rng(1);
        let rows = 100;
        let cols = 50;
        let m = xavier_uniform(&mut rng, rows, cols);
        assert_eq!(m.len(), rows * cols);
        let a = (6.0 / (rows + cols) as f64).sqrt();
        assert!(m.iter().all(|v| *v >= -a && *v < a));
    }

    #[test]
    fn xavier_is_roughly_zero_mean() {
        let mut rng = seeded_rng(2);
        let m = xavier_uniform(&mut rng, 200, 64);
        let mean: f64 = m.iter().sum::<f64>() / m.len() as f64;
        assert!(mean.abs() < 0.01, "mean was {mean}");
    }

    #[test]
    #[should_panic(expected = "non-empty shape")]
    fn xavier_rejects_empty_shape() {
        let mut rng = seeded_rng(3);
        let _ = xavier_uniform(&mut rng, 0, 8);
    }

    #[test]
    fn uniform_init_bound_respected() {
        let mut rng = seeded_rng(4);
        let v = uniform_init(&mut rng, 1000, 0.25);
        assert!(v.iter().all(|x| x.abs() <= 0.25));
    }

    #[test]
    fn transe_bound_formula() {
        assert!((transe_bound(36) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_init_fills() {
        assert_eq!(constant_init(3, 0.5), vec![0.5, 0.5, 0.5]);
    }
}
