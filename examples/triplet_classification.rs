//! Triplet classification: tune per-relation thresholds on a labeled
//! validation set and classify unseen triples as true or false — the task of
//! the paper's Table V.
//!
//! ```text
//! cargo run --release --example triplet_classification
//! ```

use nscaching_suite::datagen::{generate_classification_sets, BenchmarkFamily};
use nscaching_suite::eval::classification::{evaluate_classification, Example};
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

fn main() {
    let dataset = BenchmarkFamily::Fb15k237
        .generate(0.01, 9)
        .expect("dataset generation");
    println!("{}", dataset.summary());

    // Labeled positive/negative pairs for the valid and test splits, mirroring
    // the released WN18RR/FB15K237 `*_neg.txt` files.
    let labeled = generate_classification_sets(&dataset, 123);
    let to_examples = |labels: &[nscaching_suite::datagen::LabeledTriple]| -> Vec<Example> {
        labels
            .iter()
            .map(|l| Example::new(l.triple, l.label))
            .collect()
    };
    let valid = to_examples(&labeled.valid);
    let test = to_examples(&labeled.test);
    println!(
        "labeled examples: {} valid / {} test ({}% positives)\n",
        valid.len(),
        test.len(),
        (labeled.test_positive_fraction() * 100.0).round()
    );

    for (name, sampler_config) in [
        ("Bernoulli", SamplerConfig::Bernoulli),
        (
            "NSCaching",
            SamplerConfig::NsCaching(NsCachingConfig::new(20, 20)),
        ),
    ] {
        let model = build_model(
            &ModelConfig::new(ModelKind::ComplEx)
                .with_dim(24)
                .with_seed(2),
            dataset.num_entities(),
            dataset.num_relations(),
        );
        let sampler = build_sampler(&sampler_config, &dataset, 31);
        let config = TrainConfig::new(15)
            .with_batch_size(256)
            .with_optimizer(OptimizerConfig::adam(0.05))
            .with_lambda(0.001)
            .with_seed(7);
        let mut trainer = Trainer::new(model, sampler, &dataset, config);
        trainer.run();

        let report = evaluate_classification(trainer.model(), &valid, &test);
        println!(
            "{:10} ComplEx: test accuracy = {:.2}% (valid {:.2}%, {} per-relation thresholds)",
            name,
            report.test_accuracy * 100.0,
            report.valid_accuracy * 100.0,
            report.thresholds.len()
        );
    }
    println!(
        "\nAs in Table V of the paper, the NSCaching-trained embeddings should classify unseen \
         triples more accurately than the Bernoulli-trained ones."
    );
}
