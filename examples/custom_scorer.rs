//! Plugging a custom scoring function into the NSCaching stack.
//!
//! The sampler, optimizer, trainer and evaluator only know about the
//! `KgeModel` trait, so any user-defined scoring function can reuse the whole
//! pipeline. This example implements a tiny "TransE with L2 distance" model
//! (the paper uses the L1 variant) and trains it with NSCaching.
//!
//! ```text
//! cargo run --release --example custom_scorer
//! ```

use nscaching_suite::datagen::GeneratorConfig;
use nscaching_suite::kg::Triple;
use nscaching_suite::models::{EmbeddingTable, GradientSink, KgeModel, ModelKind, TableId};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

/// TransE scored with the (squared-free) L2 distance: `f = −‖h + r − t‖₂`.
#[derive(Clone)]
struct TransEL2 {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    dim: usize,
}

impl TransEL2 {
    fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut rng = nscaching_suite::math::seeded_rng(seed);
        Self {
            entities: EmbeddingTable::xavier("entity", num_entities, dim, &mut rng),
            relations: EmbeddingTable::xavier("relation", num_relations, dim, &mut rng),
            dim,
        }
    }

    fn residual(&self, t: &Triple) -> Vec<f64> {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        (0..self.dim).map(|i| h[i] + r[i] - tl[i]).collect()
    }
}

impl KgeModel for TransEL2 {
    fn kind(&self) -> ModelKind {
        // Reported as TransE for configuration purposes (margin loss family).
        ModelKind::TransE
    }
    fn num_entities(&self) -> usize {
        self.entities.rows()
    }
    fn num_relations(&self) -> usize {
        self.relations.rows()
    }
    fn dim(&self) -> usize {
        self.dim
    }
    fn score(&self, t: &Triple) -> f64 {
        -self.residual(t).iter().map(|v| v * v).sum::<f64>().sqrt()
    }
    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        // f = −‖u‖₂  ⇒  ∂f/∂u = −u / ‖u‖₂ (zero at the origin).
        let u = self.residual(t);
        let norm = u.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return;
        }
        let g: Vec<f64> = u.iter().map(|v| v / norm).collect();
        grads.add(0, t.head as usize, &g, -coeff);
        grads.add(1, t.relation as usize, &g, -coeff);
        grads.add(0, t.tail as usize, &g, coeff);
    }
    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations]
    }
    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations]
    }
    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (0, t.head as usize),
            (1, t.relation as usize),
            (0, t.tail as usize),
        ]
    }
    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            if table == 0 {
                self.entities.project_row(row);
            }
        }
    }
    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

fn main() {
    let mut generator = GeneratorConfig::small("custom-scorer");
    generator.num_entities = 400;
    generator.num_train = 4_000;
    generator.num_valid = 200;
    generator.num_test = 200;
    let dataset = nscaching_suite::datagen::generate(&generator).expect("dataset generation");
    println!("{}", dataset.summary());

    let model = Box::new(TransEL2::new(
        dataset.num_entities(),
        dataset.num_relations(),
        32,
        77,
    ));
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(20, 20)),
        &dataset,
        5,
    );
    let config = TrainConfig::new(20)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(2.0)
        .with_seed(3);
    let mut trainer = Trainer::new(model, sampler, &dataset, config);
    let history = trainer.run();
    let report = history.final_report.expect("final evaluation").combined;
    println!(
        "custom L2-TransE trained with NSCaching: MRR = {:.4}, Hit@10 = {:.1}%",
        report.mrr,
        report.hits_at_10 * 100.0
    );
}
