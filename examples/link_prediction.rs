//! Link prediction end to end: load a dataset from disk if available
//! (`train.txt` / `valid.txt` / `test.txt` in the directory given as the first
//! argument), otherwise generate a WN18RR-style synthetic one; train ComplEx
//! with NSCaching; report filtered MRR/MR/Hits and answer a few individual
//! `(h, r, ?)` queries.
//!
//! ```text
//! cargo run --release --example link_prediction [path/to/dataset-dir]
//! ```

use nscaching_suite::datagen::BenchmarkFamily;
use nscaching_suite::eval::{evaluate_link_prediction, EvalProtocol};
use nscaching_suite::kg::{io, CorruptionSide, Dataset};
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

fn load_dataset() -> Dataset {
    match std::env::args().nth(1) {
        Some(dir) => {
            println!("loading dataset from {dir}");
            io::load_dataset_dir(&dir, "user-dataset").expect("readable train/valid/test files")
        }
        None => {
            println!("no dataset directory given — generating a WN18RR-style synthetic graph");
            BenchmarkFamily::Wn18rr
                .generate(0.01, 21)
                .expect("dataset generation")
        }
    }
}

fn main() {
    let dataset = load_dataset();
    println!("{}\n", dataset.summary());

    let model = build_model(
        &ModelConfig::new(ModelKind::ComplEx)
            .with_dim(32)
            .with_seed(4),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let cache = (dataset.num_entities() / 20).clamp(10, 50);
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(cache, cache)),
        &dataset,
        8,
    );
    let config = TrainConfig::new(25)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.05))
        .with_lambda(0.001)
        .with_seed(15);
    let mut trainer = Trainer::new(model, sampler, &dataset, config);
    trainer.run();

    // Full filtered evaluation.
    let filter = dataset.filter_index();
    let report = evaluate_link_prediction(
        trainer.model(),
        &dataset.test,
        &filter,
        &EvalProtocol::filtered(),
    );
    println!(
        "filtered link prediction: MRR = {:.4}, MR = {:.1}, Hits@1/3/10 = {:.1}% / {:.1}% / {:.1}%\n",
        report.combined.mrr,
        report.combined.mean_rank,
        report.combined.hits_at_1 * 100.0,
        report.combined.hits_at_3 * 100.0,
        report.combined.hits_at_10 * 100.0
    );

    // Answer a few tail queries: rank every entity for (h, r, ?) and show the
    // top candidates next to the ground truth.
    println!("example (h, r, ?) queries from the test split:");
    for query in dataset.test.iter().take(3) {
        let scores = trainer.model().score_all(query, CorruptionSide::Tail);
        let mut ranked: Vec<usize> = (0..scores.len()).collect();
        ranked.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        let top: Vec<String> = ranked
            .iter()
            .take(3)
            .map(|&e| {
                dataset
                    .entities
                    .name(e as u32)
                    .unwrap_or("<unknown>")
                    .to_string()
            })
            .collect();
        let truth = dataset.entities.name(query.tail).unwrap_or("<unknown>");
        let rank = ranked.iter().position(|&e| e as u32 == query.tail).unwrap() + 1;
        println!(
            "  ({}, {}, ?) -> top predictions {:?}, true answer {truth} at raw rank {rank}",
            dataset.entities.name(query.head).unwrap_or("<unknown>"),
            dataset
                .relations
                .name(query.relation)
                .unwrap_or("<unknown>"),
            top
        );
    }
}
