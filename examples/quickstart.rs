//! Quickstart: generate a small knowledge graph, train TransE with NSCaching
//! and evaluate filtered link prediction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nscaching_suite::datagen::GeneratorConfig;
use nscaching_suite::eval::EvalProtocol;
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

fn main() {
    // 1. A synthetic knowledge graph (drop in a real one with
    //    `nscaching_suite::kg::io::load_dataset_dir` if you have the files).
    let mut generator = GeneratorConfig::small("quickstart");
    generator.num_entities = 500;
    generator.num_train = 5_000;
    generator.num_valid = 250;
    generator.num_test = 250;
    let dataset = nscaching_suite::datagen::generate(&generator).expect("dataset generation");
    println!("{}", dataset.summary());

    // 2. A scoring function: TransE with 32-dimensional embeddings.
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(32)
            .with_seed(1),
        dataset.num_entities(),
        dataset.num_relations(),
    );

    // 3. The paper's sampler: NSCaching with N1 = N2 = 30 for this graph size.
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(30, 30)),
        &dataset,
        7,
    );

    // 4. Train with Adam and the margin ranking loss, evaluating every 5 epochs.
    let config = TrainConfig::new(30)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(3.0)
        .with_eval_every(5)
        .with_seed(42);
    let mut trainer = Trainer::new(model, sampler, &dataset, config);
    let history = trainer.run();

    // 5. Report.
    println!("\nepoch statistics:");
    for stats in history.epochs.iter().step_by(5) {
        println!(
            "  epoch {:3}: loss = {:.4}, non-zero-loss ratio = {:.2}",
            stats.epoch, stats.mean_loss, stats.nonzero_loss_ratio
        );
    }
    println!("\nconvergence snapshots (filtered MRR on a test subset):");
    for snap in &history.snapshots {
        println!(
            "  after epoch {:3} ({:6.1}s): MRR = {:.4}, Hit@10 = {:.1}%",
            snap.epoch,
            snap.elapsed_seconds,
            snap.mrr,
            snap.hits_at_10 * 100.0
        );
    }
    let final_report = history.final_report.expect("final evaluation");
    println!(
        "\nfinal filtered link prediction: MRR = {:.4}, MR = {:.1}, Hit@10 = {:.1}%",
        final_report.combined.mrr,
        final_report.combined.mean_rank,
        final_report.combined.hits_at_10 * 100.0
    );

    // The trained embeddings remain available for downstream use.
    let trained = trainer.model();
    let example = dataset.test[0];
    println!(
        "score of test triple {example}: {:.3}",
        trained.score(&example)
    );
    let _ = EvalProtocol::filtered(); // see `examples/link_prediction.rs` for custom protocols
}
