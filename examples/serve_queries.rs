//! Serving: train a model, checkpoint it mid-run, resume it, persist the
//! final snapshot and answer online queries through `KnowledgeServer`.
//!
//! ```text
//! cargo run --release --example serve_queries
//! ```
//!
//! Demonstrates the full `nscaching_serve` surface:
//!
//! 1. `save_checkpoint` / `resume_trainer` — interrupt a training run and
//!    continue it bit-for-bit from disk;
//! 2. `save_model` → `KnowledgeServer::load` — the serving artifact;
//! 3. single top-k / rank / classification queries with reusable scratch;
//! 4. batched fan-out over a `WorkerPool`;
//! 5. the version-invalidated LRU: warm hits, then a model update retiring
//!    every cached answer.

use nscaching_suite::datagen::GeneratorConfig;
use nscaching_suite::kg::{CorruptionSide, Triple};
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{build_sampler, SamplerConfig};
use nscaching_suite::serve::{
    load_checkpoint, resume_trainer, save_checkpoint, save_model, BatchScratch, KnowledgeServer,
    QueryScratch, TopKQuery,
};
use nscaching_suite::train::{TrainConfig, Trainer, WorkerPool};

fn main() {
    let dir = std::env::temp_dir().join("nscaching-serve-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let checkpoint_path = dir.join("training.ckpt");
    let snapshot_path = dir.join("model.snap");

    // 1. A synthetic graph and a training configuration.
    let mut generator = GeneratorConfig::small("serve-example");
    generator.num_entities = 400;
    generator.num_train = 4_000;
    generator.num_valid = 200;
    generator.num_test = 200;
    let dataset = nscaching_suite::datagen::generate(&generator).expect("dataset generation");
    println!("{}", dataset.summary());

    let build_config = || {
        TrainConfig::new(12)
            .with_batch_size(256)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_margin(3.0)
            .with_seed(42)
    };
    let build_sampler_fresh = || build_sampler(&SamplerConfig::Bernoulli, &dataset, 7);

    // 2. Train halfway, checkpoint, and "crash".
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(32)
            .with_seed(1),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let mut trainer = Trainer::new(model, build_sampler_fresh(), &dataset, build_config());
    for _ in 0..6 {
        trainer.train_epoch();
    }
    save_checkpoint(&checkpoint_path, &trainer).expect("checkpoint");
    println!(
        "\ncheckpointed after {} epochs -> {}",
        trainer.epochs_done(),
        checkpoint_path.display()
    );
    drop(trainer); // the training process ends here

    // 3. Resume from disk alone and finish the budget. The resumed
    //    trajectory is bit-for-bit the uninterrupted one (see the
    //    `nscaching_serve` crate docs for the guarantee and its limits).
    let checkpoint = load_checkpoint(&checkpoint_path).expect("load checkpoint");
    let mut trainer = resume_trainer(checkpoint, build_sampler_fresh(), &dataset, build_config())
        .expect("resume");
    println!("resumed at epoch {}", trainer.epochs_done());
    let history = trainer.run();
    println!(
        "finished remaining {} epochs; final filtered MRR = {:.4}",
        history.epochs.len(),
        history.final_report.as_ref().expect("report").combined.mrr
    );

    // 4. Persist the serving artifact and load it into a server with a
    //    1024-entry query cache.
    save_model(&snapshot_path, trainer.model()).expect("save model snapshot");
    let server = KnowledgeServer::load(&snapshot_path, 1024).expect("load server");
    println!(
        "\nserving {:?} (|E| = {}, |R| = {}) from {}",
        server.kind(),
        server.num_entities(),
        server.num_relations(),
        snapshot_path.display()
    );

    // 5. Online queries. Scratch buffers are caller-owned and reused, so the
    //    steady state allocates nothing.
    let mut scratch = QueryScratch::default();
    let probe = dataset.test[0];
    let query = TopKQuery::tails(probe.head, probe.relation, 5);
    let answer = server.top_k(&query, &mut scratch).expect("valid query");
    println!("\ntop-5 tails for ({}, {}, ?):", probe.head, probe.relation);
    for ranked in answer.iter() {
        let marker = if ranked.entity == probe.tail {
            "  <- true tail"
        } else {
            ""
        };
        println!(
            "  entity {:4}  score {:8.3}{marker}",
            ranked.entity, ranked.score
        );
    }
    let rank = server
        .rank(&probe, CorruptionSide::Tail, &mut scratch)
        .expect("valid triple");
    println!("rank of the true tail among all corruptions: {rank}");
    let threshold = server.score(&probe).expect("valid triple") - 0.5;
    println!(
        "classify({probe}) at threshold {threshold:.3}: {}",
        server.classify(&probe, threshold).expect("valid triple")
    );

    // 6. Batched fan-out across a worker pool (how bulk traffic is served).
    let mut pool = WorkerPool::new(4);
    let queries: Vec<TopKQuery> = dataset
        .test
        .iter()
        .take(64)
        .map(|t| TopKQuery::tails(t.head, t.relation, 3))
        .collect();
    let mut batch = BatchScratch::default();
    let mut answers = Vec::new();
    server.top_k_batch(&mut pool, &queries, &mut batch, &mut answers);
    let stats = server.cache_stats();
    println!(
        "\nanswered {} batched queries (cache: {} hits / {} misses so far)",
        answers.len(),
        stats.hits,
        stats.misses
    );

    // 7. Repeat traffic is served from the LRU; a model update invalidates it.
    let _ = server.top_k(&query, &mut scratch).expect("valid query");
    let hits_before = server.cache_stats().hits;
    server.update_model(|model| {
        // e.g. one online fine-tuning step; here just touch a row.
        model.tables_mut()[0].normalize_row(0);
    });
    let fresh = server.top_k(&query, &mut scratch).expect("valid query");
    println!(
        "after a model update the same query recomputes (hits stayed near {hits_before}, \
         answer still has {} entries) — stale answers can never be served",
        fresh.len()
    );

    let triples: Vec<Triple> = dataset.test.iter().take(32).copied().collect();
    let mut scores = Vec::new();
    server.score_batch(&mut pool, &triples, &mut scores);
    println!(
        "bulk-scored {} triples for classification; first = {:.3}",
        scores.len(),
        scores[0].as_ref().expect("valid triple")
    );
}
