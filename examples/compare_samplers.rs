//! Compare every negative-sampling method on the same dataset and model —
//! a miniature version of the paper's Table IV, including the IGAN-style
//! sampler that the full experiments only time (its numbers are copied from
//! its own paper in Table IV).
//!
//! ```text
//! cargo run --release --example compare_samplers
//! ```

use nscaching_suite::datagen::BenchmarkFamily;
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

fn main() {
    let dataset = BenchmarkFamily::Wn18rr
        .generate(0.01, 3)
        .expect("dataset generation");
    println!("{}\n", dataset.summary());

    let cache = (dataset.num_entities() / 20).clamp(10, 50);
    let methods: Vec<(&str, SamplerConfig)> = vec![
        ("Uniform", SamplerConfig::Uniform),
        ("Bernoulli", SamplerConfig::Bernoulli),
        (
            "NSCaching",
            SamplerConfig::NsCaching(NsCachingConfig::new(cache, cache)),
        ),
        ("KBGAN", SamplerConfig::kbgan_default()),
        (
            "IGAN-style",
            SamplerConfig::Igan {
                generator: ModelKind::TransE,
                generator_dim: 16,
                generator_lr: 0.01,
            },
        ),
    ];

    println!(
        "{:12} {:>8} {:>8} {:>8} {:>10} {:>14}",
        "method", "MRR", "MR", "Hit@10", "seconds", "extra params"
    );
    for (name, sampler_config) in methods {
        let model = build_model(
            &ModelConfig::new(ModelKind::TransE)
                .with_dim(24)
                .with_seed(5),
            dataset.num_entities(),
            dataset.num_relations(),
        );
        let sampler = build_sampler(&sampler_config, &dataset, 11);
        let extra = sampler.extra_parameters();
        let config = TrainConfig::new(15)
            .with_batch_size(256)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_margin(3.0)
            .with_seed(19);
        let mut trainer = Trainer::new(model, sampler, &dataset, config);
        let history = trainer.run();
        let report = history.final_report.expect("final evaluation").combined;
        println!(
            "{:12} {:>8.4} {:>8.1} {:>7.1}% {:>10.1} {:>14}",
            name,
            report.mrr,
            report.mean_rank,
            report.hits_at_10 * 100.0,
            history.total_seconds,
            extra
        );
    }
    println!(
        "\nThe ordering should match the paper: NSCaching at the top, the GAN-based samplers \
         paying a large per-epoch cost, the fixed schemes converging lower."
    );
}
