//! Offline mini-implementation of the `proptest` API subset this workspace
//! uses: the `proptest!` macro, range / tuple / `vec` / `any` strategies,
//! `prop_map`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds —
//! cases are generated from a fixed per-test seed so failures reproduce
//! deterministically. That is sufficient for the equivalence and invariant
//! tests in this repository; swapping in the real crate is a manifest change.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_B00Du64,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator; the stub analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

int_strategies!(u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!((A, B), (A, B, C), (A, B, C, D));

/// Strategy producing a fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy behind [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The full-range strategy for a primitive type.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection-size specification accepted by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Mirrors `proptest::collection`.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn from `size` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Per-test deterministic seed so failures reproduce.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                hash = (hash ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = $crate::TestRng::new(hash);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3usize..10,
            f in -2.0f64..2.0,
            v in prop::collection::vec(0u32..5, 1..8),
            (a, b) in (0u32..4, 10u32..14),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|e| *e < 5));
            prop_assert!(a < 4);
            prop_assert!((10..14).contains(&b));
        }

        #[test]
        fn prop_map_applies(y in (0usize..5).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0 && y < 10);
            prop_assert_eq!(y % 2, 0);
            prop_assert_ne!(y, 11);
        }
    }

    #[test]
    fn prop_assert_returns_err_on_failure() {
        let failing = || -> Result<(), TestCaseError> {
            prop_assert!(1 + 1 == 3, "math broke");
            Ok(())
        };
        assert!(failing().is_err());
        let passing = || -> Result<(), TestCaseError> {
            prop_assert_eq!(2, 2);
            prop_assert_ne!(2, 3);
            Ok(())
        };
        assert!(passing().is_ok());
    }
}
