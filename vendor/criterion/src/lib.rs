//! Offline mini-implementation of the `criterion` API subset this workspace's
//! benches use: `Criterion`, `benchmark_group`/`bench_function`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: a warm-up phase estimates the per-iteration cost, then
//! `sample_size` samples are taken, each timing a batch sized to run for
//! roughly [`TARGET_SAMPLE_NANOS`]. The median per-iteration time is reported
//! on stdout as both a human line and a machine-readable `BENCH_JSON` line so
//! scripts can scrape results. Honouring `--bench`-style CLI filters: any
//! non-flag argument is treated as a substring filter on `group/id` names
//! (matching cargo-bench's behaviour closely enough for smoke runs).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of a single measured sample.
const TARGET_SAMPLE_NANOS: f64 = 2_000_000.0;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier; only the `from_parameter` constructor is provided.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by a displayable parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Median over samples.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, calling it in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: run until ~50ms or 10k iters to estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) && warmup_iters < 10_000 {
            std_black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let batch = ((TARGET_SAMPLE_NANOS / per_iter.max(1.0)).ceil() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / batch as f64);
        }
    }

    fn estimate(&self) -> Estimate {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median_ns = if sorted.is_empty() {
            0.0
        } else {
            sorted[sorted.len() / 2]
        };
        let mean_ns = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
        Estimate {
            median_ns,
            mean_ns,
            min_ns: sorted.first().copied().unwrap_or(0.0),
            max_ns: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level benchmark manager.
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Self {
            sample_size: 100,
            filters,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> Option<Estimate> {
        let sample_size = self.sample_size;
        self.run_one("", &id.into(), sample_size, f)
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: &str,
        id: &BenchmarkId,
        sample_size: usize,
        mut f: F,
    ) -> Option<Estimate> {
        let full_name = if group.is_empty() {
            id.id.clone()
        } else {
            format!("{group}/{}", id.id)
        };
        if !self.matches_filter(&full_name) {
            return None;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        let est = bencher.estimate();
        println!(
            "{full_name:<50} time: [{} {} {}]",
            format_time(est.min_ns),
            format_time(est.median_ns),
            format_time(est.max_ns),
        );
        println!(
            "BENCH_JSON {{\"name\":\"{full_name}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
            est.median_ns, est.mean_ns, est.min_ns, est.max_ns
        );
        Some(est)
    }
}

/// A group of benchmarks sharing a name prefix and optional sample-size
/// override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group, returning its estimate (`None` when it
    /// was filtered out on the command line).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> Option<Estimate> {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        self.criterion.run_one(&name, &id.into(), sample_size, f)
    }

    /// Finish the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group, with or without a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_sane_estimates() {
        let mut c = Criterion::default().sample_size(5);
        // unit tests receive a test-filter argv; neutralise CLI filtering
        c.filters.clear();
        let est = c
            .bench_function(BenchmarkId::from_parameter("noop"), |b| {
                b.iter(|| black_box(1 + 1))
            })
            .expect("not filtered");
        assert!(est.median_ns >= 0.0);
        assert!(est.min_ns <= est.max_ns);

        let mut group = c.benchmark_group("grp");
        group.sample_size(4);
        let est = group
            .bench_function(BenchmarkId::from_parameter("sum"), |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            })
            .expect("not filtered");
        group.finish();
        assert!(est.mean_ns > 0.0);
    }

    #[test]
    fn format_time_picks_units() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(2.5e9).ends_with(" s"));
    }
}
