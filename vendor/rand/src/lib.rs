//! Minimal, self-contained reimplementation of the subset of the `rand` 0.8
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate we vendor an API-compatible stand-in: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64) and
//! [`seq::SliceRandom`] (`shuffle`/`choose`). Determinism is the only
//! contract callers rely on: every experiment seeds its own `StdRng`, so the
//! exact generator family does not matter as long as draws are reproducible.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded draw (Lemire, no rejection step): bias is
    // below 2^-64 per draw, far under anything the statistical tests probe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + below_u64(rng, span) as $t
            }
        }
    )*};
}

int_ranges!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

pub mod distributions {
    //! The `Standard` distribution for the primitive types the workspace draws.

    use super::{unit_f64, Rng};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The canonical distribution: uniform bits for integers, `[0, 1)` for
    /// floats, a fair coin for `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's raw 256-bit state, for checkpoint serialisation.
        ///
        /// Together with [`StdRng::from_state`] this makes the stream
        /// resumable: a generator restored from a captured state produces
        /// exactly the draws the original would have produced next. (The real
        /// `rand` crate exposes the same capability through serde on the
        /// concrete generator types.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        ///
        /// An all-zero state is the one fixed point of xoshiro256** (the
        /// stream would be constant zero); it cannot be produced by
        /// `seed_from_u64` or by advancing a seeded generator, so it is
        /// rejected loudly rather than resumed silently.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256** state"
            );
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice shuffling and choosing.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 50);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            let _ = a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }
}
