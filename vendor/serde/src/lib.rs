//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and data
//! types but never serialises anything through serde itself (reports are
//! written as hand-rolled JSON in `nscaching-bench`). Since the build
//! environment cannot reach crates.io, this crate provides the two traits as
//! blanket-implemented markers and re-exports no-op derive macros, keeping
//! every `#[derive(Serialize, Deserialize)]` in the tree compiling unchanged.
//! Swapping in the real serde later is a one-line change in the workspace
//! manifest and requires no source edits.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Derivable {
        _x: u32,
    }

    fn assert_traits<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_are_satisfied() {
        assert_traits::<Derivable>();
        assert_traits::<Vec<f64>>();
    }
}
