//! # nscaching-suite
//!
//! Facade crate for the Rust reproduction of *NSCaching: Simple and Efficient
//! Negative Sampling for Knowledge Graph Embedding* (Zhang, Yao, Shao, Chen —
//! ICDE 2019).
//!
//! This crate simply re-exports the workspace crates under short module names
//! so that the examples and downstream users can depend on a single package:
//!
//! * [`kg`] — knowledge-graph substrate (triples, vocabularies, datasets);
//! * [`datagen`] — synthetic WN18/WN18RR/FB15K/FB15K237-style benchmark generators;
//! * [`math`] — numeric utilities (vector ops, sampling, statistics);
//! * [`models`] — scoring functions with analytic gradients;
//! * [`optim`] — sparse optimizers (SGD, AdaGrad, Adam);
//! * [`sampling`] — negative samplers, including the paper's NSCaching;
//! * [`train`] — training loop, pretraining and instrumentation;
//! * [`eval`] — link prediction and triplet classification protocols;
//! * [`serve`] — checkpoint store and online link-prediction serving engine;
//! * [`net`] — fault-tolerant TCP front door (wire protocol, server, client,
//!   fault-injection harness);
//! * [`obs`] — unified observability core (counters, gauges, latency
//!   histograms, metrics registry with text exposition).
//!
//! See the `examples/` directory for end-to-end usage, starting with
//! `examples/quickstart.rs` (training) and `examples/serve_queries.rs`
//! (checkpointing + serving).

pub use nscaching as sampling;
pub use nscaching_datagen as datagen;
pub use nscaching_eval as eval;
pub use nscaching_kg as kg;
pub use nscaching_math as math;
pub use nscaching_models as models;
pub use nscaching_net as net;
pub use nscaching_obs as obs;
pub use nscaching_optim as optim;
pub use nscaching_serve as serve;
pub use nscaching_train as train;
