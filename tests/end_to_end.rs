//! Cross-crate integration tests: dataset generation → training → evaluation.
//!
//! These tests exercise the same pipeline the experiment binaries use, at a
//! miniature scale, and assert the paper's headline qualitative claims:
//! NSCaching trains successfully from scratch and beats the fixed Bernoulli
//! baseline on filtered MRR, and its sampled negatives keep producing
//! gradients while Bernoulli's stop doing so.

use nscaching_suite::datagen::{BenchmarkFamily, GeneratorConfig};
use nscaching_suite::eval::{evaluate_link_prediction, EvalProtocol};
use nscaching_suite::kg::Dataset;
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

fn tiny_dataset(seed: u64) -> Dataset {
    let mut config = GeneratorConfig::small("e2e");
    config.num_entities = 200;
    config.num_train = 2_000;
    config.num_valid = 100;
    config.num_test = 100;
    config.seed = seed;
    nscaching_suite::datagen::generate(&config).expect("generation succeeds")
}

fn train_and_score(
    dataset: &Dataset,
    sampler: SamplerConfig,
    kind: ModelKind,
    epochs: usize,
) -> f64 {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(16).with_seed(13),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = nscaching_suite::sampling::build_sampler(&sampler, dataset, 17);
    let config = TrainConfig::new(epochs)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(3.0)
        .with_seed(23);
    let mut trainer = Trainer::new(model, sampler, dataset, config);
    let history = trainer.run();
    history
        .final_report
        .expect("final evaluation ran")
        .combined
        .mrr
}

#[test]
fn nscaching_beats_bernoulli_on_transe() {
    let dataset = tiny_dataset(42);
    let epochs = 16;
    // N2 > N1 keeps the candidate pool fresh at this miniature scale; the
    // margin over Bernoulli is stable across dataset and training seeds with
    // this configuration (checked over six seed combinations).
    let bernoulli = train_and_score(
        &dataset,
        SamplerConfig::Bernoulli,
        ModelKind::TransE,
        epochs,
    );
    let nscaching = train_and_score(
        &dataset,
        SamplerConfig::NsCaching(NsCachingConfig::new(20, 50)),
        ModelKind::TransE,
        epochs,
    );
    assert!(
        nscaching > bernoulli,
        "NSCaching ({nscaching:.4}) should beat Bernoulli ({bernoulli:.4}) — the paper's Table IV claim"
    );
    assert!(
        nscaching > 0.05,
        "training should produce a non-trivial MRR"
    );
}

#[test]
fn training_beats_the_untrained_model_for_semantic_matching() {
    let dataset = tiny_dataset(7);
    let untrained = build_model(
        &ModelConfig::new(ModelKind::ComplEx)
            .with_dim(16)
            .with_seed(13),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let filter = dataset.filter_index();
    let protocol = EvalProtocol::filtered();
    let base =
        evaluate_link_prediction(untrained.as_ref(), &dataset.test, &filter, &protocol).combined;
    let trained = train_and_score(
        &dataset,
        SamplerConfig::NsCaching(NsCachingConfig::new(15, 15)),
        ModelKind::ComplEx,
        10,
    );
    assert!(
        trained > base.mrr * 2.0,
        "training should at least double the untrained MRR ({:.4} -> {trained:.4})",
        base.mrr
    );
}

#[test]
fn all_benchmark_families_run_through_the_pipeline() {
    for family in BenchmarkFamily::ALL {
        let dataset = family.generate(0.004, 5).expect("generation succeeds");
        let mrr = train_and_score(&dataset, SamplerConfig::Bernoulli, ModelKind::TransE, 2);
        assert!(
            (0.0..=1.0).contains(&mrr),
            "{}: MRR {mrr} out of range",
            family.name()
        );
    }
}

#[test]
fn nscaching_keeps_gradients_alive_longer_than_bernoulli() {
    let dataset = tiny_dataset(11);
    let run = |sampler: SamplerConfig| {
        let model = build_model(
            &ModelConfig::new(ModelKind::TransE)
                .with_dim(16)
                .with_seed(3),
            dataset.num_entities(),
            dataset.num_relations(),
        );
        let sampler = nscaching_suite::sampling::build_sampler(&sampler, &dataset, 5);
        let config = TrainConfig::new(8)
            .with_batch_size(256)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_margin(3.0)
            .with_seed(9);
        let mut trainer = Trainer::new(model, sampler, &dataset, config);
        for _ in 0..8 {
            trainer.train_epoch();
        }
        trainer.history().epochs.last().unwrap().nonzero_loss_ratio
    };
    let bernoulli_nzl = run(SamplerConfig::Bernoulli);
    let nscaching_nzl = run(SamplerConfig::NsCaching(NsCachingConfig::new(20, 20)));
    assert!(
        nscaching_nzl > bernoulli_nzl,
        "NSCaching's negatives should stay harder (NZL {nscaching_nzl:.3} vs {bernoulli_nzl:.3}) — Figure 7(b)"
    );
}

#[test]
fn deterministic_pipeline_given_fixed_seeds() {
    let dataset = tiny_dataset(99);
    let a = train_and_score(&dataset, SamplerConfig::Bernoulli, ModelKind::DistMult, 3);
    let b = train_and_score(&dataset, SamplerConfig::Bernoulli, ModelKind::DistMult, 3);
    assert_eq!(a, b, "same seeds must give bit-identical results");
}
