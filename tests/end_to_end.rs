//! Cross-crate integration tests: dataset generation → training → evaluation.
//!
//! These tests exercise the same pipeline the experiment binaries use, at a
//! miniature scale, and assert the paper's headline qualitative claims:
//! NSCaching trains successfully from scratch and beats the fixed Bernoulli
//! baseline on filtered MRR, and its sampled negatives keep producing
//! gradients while Bernoulli's stop doing so.

use nscaching_suite::datagen::{BenchmarkFamily, GeneratorConfig};
use nscaching_suite::eval::{evaluate_link_prediction, EvalProtocol};
use nscaching_suite::kg::Dataset;
use nscaching_suite::models::{build_model, ModelConfig, ModelKind};
use nscaching_suite::optim::OptimizerConfig;
use nscaching_suite::sampling::{NsCachingConfig, SamplerConfig};
use nscaching_suite::train::{TrainConfig, Trainer};

fn tiny_dataset(seed: u64) -> Dataset {
    let mut config = GeneratorConfig::small("e2e");
    config.num_entities = 200;
    config.num_train = 2_000;
    config.num_valid = 100;
    config.num_test = 100;
    config.seed = seed;
    nscaching_suite::datagen::generate(&config).expect("generation succeeds")
}

fn train_and_score(
    dataset: &Dataset,
    sampler: SamplerConfig,
    kind: ModelKind,
    epochs: usize,
) -> f64 {
    train_and_score_sharded(dataset, sampler, kind, epochs, None)
}

/// Like [`train_and_score`] but with an explicit shard count. `None` keeps
/// the environment default (`NSC_SHARDS`), which the CI matrix varies;
/// `Some(1)` pins the sequential paper-exact trainer for tests that assert
/// tuned quality margins from the paper's tables — those margins hold for the
/// sequential algorithm the paper describes, not for every parallel
/// trajectory.
fn train_and_score_sharded(
    dataset: &Dataset,
    sampler: SamplerConfig,
    kind: ModelKind,
    epochs: usize,
    shards: Option<usize>,
) -> f64 {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(16).with_seed(13),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let sampler = nscaching_suite::sampling::build_sampler(&sampler, dataset, 17);
    let mut config = TrainConfig::new(epochs)
        .with_batch_size(256)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(3.0)
        .with_seed(23);
    if let Some(shards) = shards {
        config = config.with_shards(shards);
    }
    let mut trainer = Trainer::new(model, sampler, dataset, config);
    let history = trainer.run();
    history
        .final_report
        .expect("final evaluation ran")
        .combined
        .mrr
}

#[test]
fn nscaching_beats_bernoulli_on_transe() {
    let dataset = tiny_dataset(42);
    let epochs = 16;
    // N2 > N1 keeps the candidate pool fresh at this miniature scale; the
    // margin over Bernoulli is stable across dataset and training seeds with
    // this configuration (checked over six seed combinations). Pinned to the
    // sequential trainer: the margin is a property of the paper's algorithm,
    // which is exactly the shards = 1 path.
    let bernoulli = train_and_score_sharded(
        &dataset,
        SamplerConfig::Bernoulli,
        ModelKind::TransE,
        epochs,
        Some(1),
    );
    let nscaching = train_and_score_sharded(
        &dataset,
        SamplerConfig::NsCaching(NsCachingConfig::new(20, 50)),
        ModelKind::TransE,
        epochs,
        Some(1),
    );
    assert!(
        nscaching > bernoulli,
        "NSCaching ({nscaching:.4}) should beat Bernoulli ({bernoulli:.4}) — the paper's Table IV claim"
    );
    assert!(
        nscaching > 0.05,
        "training should produce a non-trivial MRR"
    );
}

#[test]
fn sharded_training_reaches_nontrivial_quality() {
    // The 4-shard pipeline is a different (deterministic) trajectory than the
    // sequential trainer, but it must still *train*: same dataset and budget
    // as the margin test above, non-trivial filtered MRR out.
    let dataset = tiny_dataset(42);
    let parallel = train_and_score_sharded(
        &dataset,
        SamplerConfig::NsCaching(NsCachingConfig::new(20, 50)),
        ModelKind::TransE,
        16,
        Some(4),
    );
    assert!(
        parallel > 0.05,
        "4-shard NSCaching training should reach a non-trivial MRR, got {parallel:.4}"
    );
}

#[test]
fn training_beats_the_untrained_model_for_semantic_matching() {
    let dataset = tiny_dataset(7);
    let untrained = build_model(
        &ModelConfig::new(ModelKind::ComplEx)
            .with_dim(16)
            .with_seed(13),
        dataset.num_entities(),
        dataset.num_relations(),
    );
    let filter = dataset.filter_index();
    let protocol = EvalProtocol::filtered();
    let base =
        evaluate_link_prediction(untrained.as_ref(), &dataset.test, &filter, &protocol).combined;
    let trained = train_and_score(
        &dataset,
        SamplerConfig::NsCaching(NsCachingConfig::new(15, 15)),
        ModelKind::ComplEx,
        10,
    );
    assert!(
        trained > base.mrr * 2.0,
        "training should at least double the untrained MRR ({:.4} -> {trained:.4})",
        base.mrr
    );
}

#[test]
fn all_benchmark_families_run_through_the_pipeline() {
    for family in BenchmarkFamily::ALL {
        let dataset = family.generate(0.004, 5).expect("generation succeeds");
        let mrr = train_and_score(&dataset, SamplerConfig::Bernoulli, ModelKind::TransE, 2);
        assert!(
            (0.0..=1.0).contains(&mrr),
            "{}: MRR {mrr} out of range",
            family.name()
        );
    }
}

#[test]
fn nscaching_keeps_gradients_alive_longer_than_bernoulli() {
    let dataset = tiny_dataset(11);
    let run = |sampler: SamplerConfig| {
        let model = build_model(
            &ModelConfig::new(ModelKind::TransE)
                .with_dim(16)
                .with_seed(3),
            dataset.num_entities(),
            dataset.num_relations(),
        );
        let sampler = nscaching_suite::sampling::build_sampler(&sampler, &dataset, 5);
        let config = TrainConfig::new(8)
            .with_batch_size(256)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_margin(3.0)
            .with_seed(9);
        let mut trainer = Trainer::new(model, sampler, &dataset, config);
        for _ in 0..8 {
            trainer.train_epoch();
        }
        trainer.history().epochs.last().unwrap().nonzero_loss_ratio
    };
    let bernoulli_nzl = run(SamplerConfig::Bernoulli);
    let nscaching_nzl = run(SamplerConfig::NsCaching(NsCachingConfig::new(20, 20)));
    assert!(
        nscaching_nzl > bernoulli_nzl,
        "NSCaching's negatives should stay harder (NZL {nscaching_nzl:.3} vs {bernoulli_nzl:.3}) — Figure 7(b)"
    );
}

#[test]
fn deterministic_pipeline_given_fixed_seeds() {
    let dataset = tiny_dataset(99);
    let a = train_and_score(&dataset, SamplerConfig::Bernoulli, ModelKind::DistMult, 3);
    let b = train_and_score(&dataset, SamplerConfig::Bernoulli, ModelKind::DistMult, 3);
    assert_eq!(a, b, "same seeds must give bit-identical results");
}
